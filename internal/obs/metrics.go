package obs

import (
	"fmt"
	"io"
	"strconv"

	"implicate/internal/imps"
	"implicate/internal/telemetry"
)

// quantiles are the per-RPC latency quantiles /metrics exports; the same
// two imptop renders.
var quantiles = []float64{0.5, 0.99}

// WriteMetrics renders a telemetry snapshot plus the engine's health
// reports in the Prometheus text exposition format. The name mapping is
// documented in DESIGN.md §11; everything is written by hand because the
// admin endpoint must not pull a client library into a stdlib-only build.
// Returns the first write error (an aborted scrape, typically).
func WriteMetrics(w io.Writer, sn telemetry.Snapshot, health []imps.HealthReport) error {
	mw := &metricsWriter{w: w}

	mw.counter("imps_tuples_ingested_total", "Tuples applied to the engine.", sn.TuplesIngested)
	mw.counter("imps_batches_total", "Batches accepted into the ingest queue.", sn.Batches)
	mw.counter("imps_batches_rejected_total", "Batches refused with a backpressure reply.", sn.BatchesRejected)
	mw.counter("imps_merges_total", "Remote sketches merged in via SnapshotMerge.", sn.Merges)
	mw.gauge("imps_queue_high_water", "Deepest the ingest queue has been.", float64(sn.QueueHighWater))
	mw.counter("imps_pool_saturation_total", "Dispatches that found a pipeline worker queue full and blocked.", sn.PoolSaturation)

	mw.counter("imps_udp_datagrams_total", "Valid UDP ingest datagrams received.", sn.UDPDatagrams)
	mw.counter("imps_udp_applied_total", "UDP ingest batches applied to the engine.", sn.UDPApplied)
	mw.counter("imps_udp_duplicates_total", "UDP datagrams dropped as duplicates.", sn.UDPDups)
	mw.counter("imps_udp_drops_total", "UDP datagrams dropped for any non-duplicate reason.", sn.UDPDrops)
	mw.counter("imps_udp_window_drops_total", "UDP datagrams dropped beyond the reorder window.", sn.UDPWindowDrops)
	mw.counter("imps_udp_decode_drops_total", "In-window UDP datagrams whose payload failed to decode.", sn.UDPDecodeDrops)
	mw.counter("imps_udp_reorders_total", "Out-of-order UDP datagrams parked in the reorder window.", sn.UDPReorders)
	mw.counter("imps_udp_crc_failures_total", "UDP datagrams rejected before sequencing (truncated, version-skewed or bad checksum).", sn.UDPCRCFailures)

	if len(sn.Shards) > 0 {
		mw.help("imps_dispatch_shard_tasks_total", "Worker tasks enqueued, per dispatch shard.", "counter")
		for i := range sn.Shards {
			sh := &sn.Shards[i]
			mw.series("imps_dispatch_shard_tasks_total",
				fmt.Sprintf(`lane="%s",shard="%d"`, escapeLabel(sh.Lane), sh.Shard), float64(sh.Tasks))
		}
		mw.help("imps_dispatch_shard_high_water", "Deepest unconsumed lane backlog observed, per dispatch shard.", "gauge")
		for i := range sn.Shards {
			sh := &sn.Shards[i]
			mw.series("imps_dispatch_shard_high_water",
				fmt.Sprintf(`lane="%s",shard="%d"`, escapeLabel(sh.Lane), sh.Shard), float64(sh.HighWater))
		}
	}

	mw.help("imps_worker_tasks_total", "Pipeline tasks applied, per worker.", "counter")
	for i, ws := range sn.Workers {
		mw.series("imps_worker_tasks_total", fmt.Sprintf(`worker="%d"`, i), float64(ws.Tasks))
	}
	mw.help("imps_worker_units_total", "Work units (tuples or planned pairs) applied, per worker.", "counter")
	for i, ws := range sn.Workers {
		mw.series("imps_worker_units_total", fmt.Sprintf(`worker="%d"`, i), float64(ws.Units))
	}

	mw.help("imps_rpc_requests_total", "Requests handled, per RPC.", "counter")
	for r := telemetry.RPC(0); r < telemetry.NumRPCs; r++ {
		mw.series("imps_rpc_requests_total", fmt.Sprintf(`rpc="%s"`, r), float64(sn.Latency[r].Count()))
	}
	mw.help("imps_rpc_latency_seconds", "Handling latency quantile upper bounds, per RPC (log2 buckets).", "summary")
	for r := telemetry.RPC(0); r < telemetry.NumRPCs; r++ {
		if sn.Latency[r].Count() == 0 {
			continue
		}
		for _, q := range quantiles {
			mw.series("imps_rpc_latency_seconds",
				fmt.Sprintf(`rpc="%s",quantile="%s"`, r, strconv.FormatFloat(q, 'g', -1, 64)),
				sn.Latency[r].Quantile(q).Seconds())
		}
	}

	if len(sn.Tenants) > 0 {
		tenantGauges := []struct {
			name, help string
			typ        string
			value      func(t *telemetry.TenantStats) float64
		}{
			{"imps_tenant_tuples_total", "Tuples applied, per tenant.", "counter",
				func(t *telemetry.TenantStats) float64 { return float64(t.Tuples) }},
			{"imps_tenant_batches_total", "Batches admitted to the tenant's lane.", "counter",
				func(t *telemetry.TenantStats) float64 { return float64(t.Batches) }},
			{"imps_tenant_batches_rejected_total", "Batches refused with a backpressure reply, per tenant.", "counter",
				func(t *telemetry.TenantStats) float64 { return float64(t.Rejected) }},
			{"imps_tenant_quota_refusals_total", "Batches refused at admission by the tenant's quota.", "counter",
				func(t *telemetry.TenantStats) float64 { return float64(t.QuotaRefusals) }},
			{"imps_tenant_mem_bytes", "Tenant's self-assessed estimator memory.", "gauge",
				func(t *telemetry.TenantStats) float64 { return float64(t.MemBytes) }},
			{"imps_tenant_mem_budget_bytes", "Tenant's declared memory ceiling (0: unlimited).", "gauge",
				func(t *telemetry.TenantStats) float64 { return float64(t.MemBudget) }},
			{"imps_tenant_weight", "Tenant's fair-share dispatch weight.", "gauge",
				func(t *telemetry.TenantStats) float64 { return float64(t.Weight) }},
			{"imps_tenant_queue_high_water", "Deepest the tenant's ingest lane has been.", "gauge",
				func(t *telemetry.TenantStats) float64 { return float64(t.QueueHighWater) }},
		}
		for _, g := range tenantGauges {
			mw.help(g.name, g.help, g.typ)
			for i := range sn.Tenants {
				t := &sn.Tenants[i]
				mw.series(g.name, fmt.Sprintf(`tenant="%s"`, escapeLabel(t.Name)), g.value(t))
			}
		}
	}

	stmtGauges := []struct {
		name, help string
		typ        string
		value      func(h *imps.HealthReport) float64
	}{
		{"imps_stmt_tuples_total", "Tuples observed by the statement's estimator.", "counter",
			func(h *imps.HealthReport) float64 { return float64(h.Tuples) }},
		{"imps_stmt_mem_entries", "Live counter entries held by the estimator.", "gauge",
			func(h *imps.HealthReport) float64 { return float64(h.MemEntries) }},
		{"imps_stmt_mem_bytes", "Estimated heap bytes held by the estimator.", "gauge",
			func(h *imps.HealthReport) float64 { return float64(h.MemBytes) }},
		{"imps_stmt_bitmap_fill", "Fill fraction of the estimator's bounded structure (bitmap cells set, or budget used).", "gauge",
			func(h *imps.HealthReport) float64 { return h.BitmapFill }},
		{"imps_stmt_leftmost_zero", "Mean leftmost-zero position over the sketch's bitmaps.", "gauge",
			func(h *imps.HealthReport) float64 { return h.LeftmostZero }},
		{"imps_stmt_fringe_tracked", "A-itemsets tracked in fringe or support-only cells.", "gauge",
			func(h *imps.HealthReport) float64 { return float64(h.FringeTracked) }},
		{"imps_stmt_fringe_pairs", "Live (a,b) pair counters.", "gauge",
			func(h *imps.HealthReport) float64 { return float64(h.FringePairs) }},
		{"imps_stmt_fringe_tombstones", "Excluded-itemset markers held in live cells.", "gauge",
			func(h *imps.HealthReport) float64 { return float64(h.FringeTombstones) }},
		{"imps_stmt_fringe_evictions_total", "Cells permanently retired from tracking (overflowed or pushed out).", "counter",
			func(h *imps.HealthReport) float64 { return float64(h.FringeEvictions) }},
		{"imps_stmt_fringe_width", "Widest live fringe across the sketch's bitmaps.", "gauge",
			func(h *imps.HealthReport) float64 { return float64(h.FringeWidth) }},
		{"imps_stmt_rel_err", "Estimator's self-assessed relative error (stderr/estimate).", "gauge",
			func(h *imps.HealthReport) float64 { return h.RelErr }},
	}
	for _, g := range stmtGauges {
		mw.help(g.name, g.help, g.typ)
		for i := range health {
			h := &health[i]
			mw.series(g.name,
				fmt.Sprintf(`stmt="%d",kind="%s",shared="%t"`, h.Stmt, escapeLabel(h.Kind), h.Shared),
				g.value(h))
		}
	}
	return mw.err
}

// metricsWriter accumulates the first write error so callers check once.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *metricsWriter) help(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) series(name, labels string, v float64) {
	m.printf("%s{%s} %s\n", name, labels, formatValue(v))
}

func (m *metricsWriter) counter(name, help string, v int64) {
	m.help(name, help, "counter")
	m.printf("%s %d\n", name, v)
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	m.help(name, help, "gauge")
	m.printf("%s %s\n", name, formatValue(v))
}

// formatValue renders a sample value; Prometheus accepts "+Inf"/"-Inf"/
// "NaN", which is exactly what strconv emits for the non-finite cases.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline are the three characters a
// quoted label value cannot carry literally. Everything in this repo's own
// label vocabulary is already clean — this guards values that originate
// outside it (tenant names, estimator kinds, leaf names).
func escapeLabel(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			out := make([]byte, 0, len(s)+4)
			for j := 0; j < len(s); j++ {
				switch s[j] {
				case '\\':
					out = append(out, '\\', '\\')
				case '"':
					out = append(out, '\\', '"')
				case '\n':
					out = append(out, '\\', 'n')
				default:
					out = append(out, s[j])
				}
			}
			return string(out)
		}
	}
	return s
}
