package coord

import (
	"fmt"
	"testing"

	"implicate/internal/obs"
	"implicate/internal/proto"
)

// TestKillLeafFleetTraceParenting is the cross-node trace pin: a trace-aware
// coordinator over three trace-aware leaves, one leaf killed mid-stream and
// recovered through journal replay, and the assembled fleet trace must still
// tell one causally-ordered story — every delivery span a root owned by the
// coordinator, every leaf-side ingest span parented under the exact delivery
// that carried its batch (trace and parent ids matching), parents ordered
// before their children, and the recovered victim present with post-restart
// spans adopted by replayed deliveries.
func TestKillLeafFleetTraceParenting(t *testing.T) {
	const leaves, victim = 3, 1
	schema := fleetSchema(t)
	fl := newFleet(t, schema)
	fl.traceSpans = 4096
	t.Cleanup(fl.closeAll)
	co := startCoordinator(t, fl, leaves, "leaf")

	tuples := fleetTuples(6000)
	const chunk = 250
	killAt := len(tuples) / 3
	for off := 0; off < len(tuples); off += chunk {
		end := min(off+chunk, len(tuples))
		if err := co.Ingest(tuples[off:end]); err != nil {
			t.Fatal(err)
		}
		if off <= killAt && killAt < end {
			fl.kill(fmt.Sprintf("leaf%d", victim))
		}
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := co.Status(); st.Leaves[victim].State != proto.LeafUp || st.Leaves[victim].Epoch < 1 {
		t.Fatalf("victim not recovered: %+v", st.Leaves[victim])
	}

	spans := co.FleetTrace()
	if len(spans) == 0 {
		t.Fatal("empty fleet trace from a traced run")
	}

	// Index the coordinator's delivery spans: the roots every cross-node
	// trace hangs from.
	delivers := make(map[uint64]obs.FleetSpan) // span id -> span
	pos := make(map[uint64]int)                // span id -> index in the ordered dump
	for i, s := range spans {
		if s.ID != 0 {
			pos[s.ID] = i
		}
		if s.Node == "coord" && s.Kind == obs.SpanDeliver {
			if s.Trace == 0 || s.ID == 0 {
				t.Fatalf("deliver span without identity: %+v", s)
			}
			if s.Parent != 0 {
				t.Errorf("deliver span %016x has parent %016x, want root", s.ID, s.Parent)
			}
			if s.Arg < 0 || s.Arg >= leaves {
				t.Errorf("deliver span names leaf index %d, fleet has %d", s.Arg, leaves)
			}
			delivers[s.ID] = s
		}
	}
	if len(delivers) == 0 {
		t.Fatal("no delivery spans in the fleet trace")
	}

	// Every traced leaf span must hang under a real delivery: same trace id,
	// parent id naming an existing delivery span, and — the causal-order
	// pin — the delivery ordered before it in the assembled dump.
	adopted := make(map[string]int)
	for i, s := range spans {
		if s.Node == "coord" || s.Trace == 0 {
			continue // untraced leaf spans (health probes, local work) are fine
		}
		d, ok := delivers[s.Parent]
		if !ok {
			t.Fatalf("leaf span %s/%v parent %016x names no delivery span", s.Node, s.Kind, s.Parent)
		}
		if d.Trace != s.Trace {
			t.Fatalf("leaf span %s/%v trace %016x != its delivery's trace %016x", s.Node, s.Kind, s.Trace, d.Trace)
		}
		if pi := pos[s.Parent]; pi >= i {
			t.Fatalf("span %d (%s/%v) ordered before its parent at %d", i, s.Node, s.Kind, pi)
		}
		adopted[s.Node]++
	}
	for i := 0; i < leaves; i++ {
		name := fmt.Sprintf("leaf%d", i)
		if adopted[name] == 0 {
			t.Errorf("no leaf-side spans parented under deliveries for %s", name)
		}
	}
	// The victim's ring died with it: everything it reports postdates the
	// restart, so its adopted spans prove replayed deliveries re-stamped
	// live contexts rather than replaying stale ones.
	if adopted[fmt.Sprintf("leaf%d", victim)] == 0 {
		t.Error("recovered victim contributed no adopted spans")
	}
}
