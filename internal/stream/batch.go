package stream

import (
	"encoding/binary"
	"fmt"
)

// In-memory batch decoding (DESIGN.md §12). The server's ingest payloads
// arrive as complete binary streams already sitting in one frame buffer;
// running them through BinaryReader costs a 64 KiB bufio allocation plus a
// string allocation per tuple. The functions here decode straight from the
// payload slice instead: the whole batch materializes with three heap
// allocations — one string conversion covering every record's bytes, one
// flat field array, one tuple slice — independent of the tuple count.

// BinaryHeader returns the encoded binary-format header for schema,
// exactly as BinaryWriter emits it. A server that compares an ingest
// payload's prefix against this (bytes.HasPrefix) has verified the batch
// schema without parsing: the encoding is canonical, so equal headers and
// equal schemas coincide.
func BinaryHeader(schema *Schema) []byte {
	dst := append([]byte(nil), binaryMagic...)
	dst = binary.AppendUvarint(dst, uint64(schema.Len()))
	for _, name := range schema.names {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	return dst
}

// maxBatchValueLen mirrors BinaryReader's per-value bound.
const maxBatchValueLen = 1 << 24

// RecordArena holds the reusable backing slices of one decoded batch: the
// flat field array and the tuple headers. An arena-backed decode reuses
// their capacity across batches, so a recycled arena's steady-state cost is
// a single allocation per batch — the record-region string conversion,
// which cannot be pooled because the decoded field strings alias it and
// escape into the estimators' key comparisons. The caller owns the arena
// and must not decode into it again while any tuple from the previous
// decode is still reachable.
type RecordArena struct {
	flat   []string
	tuples []Tuple
}

// Reset drops the arena's references into the last decoded batch without
// releasing the backing capacity, so a pooled arena does not pin the
// record strings of whatever batch it last carried.
func (ar *RecordArena) Reset() {
	clear(ar.flat)
	clear(ar.tuples)
	ar.flat = ar.flat[:0]
	ar.tuples = ar.tuples[:0]
}

// DecodeBinaryRecords decodes like the package-level function of the same
// name, but materializes the field and tuple slices in the arena's reused
// capacity. The returned tuples remain valid until the next decode into
// (or Reset of) this arena.
func (ar *RecordArena) DecodeBinaryRecords(data []byte, arity, maxTuples int) ([]Tuple, error) {
	return decodeBinaryRecords(data, arity, maxTuples, ar)
}

// DecodeBinaryRecords decodes the record region of a binary batch — the
// bytes following the header, e.g. payload[len(BinaryHeader(schema)):] —
// into tuples of the given arity. maxTuples bounds the batch; exceeding it
// is an error, not a truncation, matching the server's batch-size policy.
//
// Every field string points into a single string conversion of the record
// region, so the returned tuples are immutable, self-contained (they do
// not alias data), and cost O(1) allocations for the whole batch.
func DecodeBinaryRecords(data []byte, arity, maxTuples int) ([]Tuple, error) {
	return decodeBinaryRecords(data, arity, maxTuples, nil)
}

func decodeBinaryRecords(data []byte, arity, maxTuples int, ar *RecordArena) ([]Tuple, error) {
	if arity < 1 {
		return nil, fmt.Errorf("stream: record decode needs arity >= 1")
	}
	// Pass 1: validate the uvarint/length structure and count records. No
	// bytes are copied; a malformed batch is rejected before any
	// allocation is sized from its contents.
	fields := 0
	off := 0
	for off < len(data) {
		n, w := binary.Uvarint(data[off:])
		if w <= 0 {
			return nil, fmt.Errorf("stream: binary record at byte offset %d (after tuple %d): bad value length", off, fields/arity)
		}
		if n > maxBatchValueLen {
			return nil, fmt.Errorf("stream: binary record at byte offset %d (after tuple %d): value length %d exceeds limit", off, fields/arity, n)
		}
		if uint64(len(data)-off-w) < n {
			return nil, fmt.Errorf("stream: binary record at byte offset %d (after tuple %d): truncated value", off, fields/arity)
		}
		off += w + int(n)
		fields++
	}
	if fields%arity != 0 {
		return nil, fmt.Errorf("stream: binary batch ends mid-record (%d fields, arity %d)", fields, arity)
	}
	count := fields / arity
	if count > maxTuples {
		return nil, fmt.Errorf("stream: batch exceeds %d tuples", maxTuples)
	}
	if count == 0 {
		return nil, nil
	}
	// Pass 2: one conversion covers every record's bytes (the interleaved
	// length prefixes ride along — a few percent of slack for zero
	// compaction work); fields slice into it.
	rec := string(data)
	var flat []string
	var tuples []Tuple
	if ar != nil {
		if cap(ar.flat) >= fields {
			flat = ar.flat[:fields]
		} else {
			flat = make([]string, fields)
		}
		if cap(ar.tuples) >= count {
			tuples = ar.tuples[:count]
		} else {
			tuples = make([]Tuple, count)
		}
		ar.flat, ar.tuples = flat, tuples
	} else {
		flat = make([]string, fields)
		tuples = make([]Tuple, count)
	}
	off = 0
	for i := 0; i < fields; i++ {
		n, w := binary.Uvarint(data[off:])
		off += w
		flat[i] = rec[off : off+int(n)]
		off += int(n)
	}
	for i := range tuples {
		tuples[i] = Tuple(flat[i*arity : (i+1)*arity : (i+1)*arity])
	}
	return tuples, nil
}
