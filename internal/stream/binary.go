package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// Binary codec: a compact alternative to the text format for multi-million
// tuple files (impgen/impstat accept either; readers sniff the magic).
//
// Layout: the magic "IMPB\x01", a uvarint attribute count, then each
// attribute name length-prefixed; records follow as length-prefixed values
// in schema order. Values may contain any byte except that the key
// separator remains reserved for projections.

const binaryMagic = "IMPB\x01"

// BinaryWriter encodes tuples in the binary format.
type BinaryWriter struct {
	w      *bufio.Writer
	schema *Schema
	wrote  bool
	buf    []byte
}

// NewBinaryWriter returns a BinaryWriter for the schema.
func NewBinaryWriter(w io.Writer, schema *Schema) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16), schema: schema, buf: make([]byte, binary.MaxVarintLen64)}
}

func (w *BinaryWriter) header() error {
	if _, err := w.w.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := w.uvarint(uint64(w.schema.Len())); err != nil {
		return err
	}
	for _, name := range w.schema.names {
		if err := w.bytes([]byte(name)); err != nil {
			return err
		}
	}
	return nil
}

func (w *BinaryWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf, v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *BinaryWriter) bytes(b []byte) error {
	if err := w.uvarint(uint64(len(b))); err != nil {
		return err
	}
	_, err := w.w.Write(b)
	return err
}

func (w *BinaryWriter) str(v string) error {
	if err := w.uvarint(uint64(len(v))); err != nil {
		return err
	}
	_, err := w.w.WriteString(v)
	return err
}

// Write implements Sink.
func (w *BinaryWriter) Write(t Tuple) error {
	if !w.wrote {
		w.wrote = true
		if err := w.header(); err != nil {
			return err
		}
	}
	if len(t) != w.schema.Len() {
		return fmt.Errorf("stream: tuple arity %d does not match schema arity %d", len(t), w.schema.Len())
	}
	for _, v := range t {
		for i := 0; i < len(v); i++ {
			if v[i] == KeySep {
				return fmt.Errorf("stream: value %q contains the reserved key separator", v)
			}
		}
		if err := w.str(v); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output (writing the header even for empty
// streams).
func (w *BinaryWriter) Flush() error {
	if !w.wrote {
		w.wrote = true
		if err := w.header(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// BatchSource is implemented by sources that can decode many tuples per
// call, amortizing per-tuple decode and dispatch overhead. NextBatch fills
// up to len(dst) tuple slots (reusing the slots' backing storage where
// possible) and returns how many it filled. It returns io.EOF — possibly
// alongside a non-zero count — when the stream is exhausted. The filled
// tuples remain valid until the next NextBatch call.
type BatchSource interface {
	Source
	NextBatch(dst []Tuple) (int, error)
}

// countingReader wraps the buffered input and counts every byte consumed,
// so decode errors can name the exact offset of the corrupt frame — what
// makes a server's "bad batch from peer X" report actionable.
type countingReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countingReader) Discard(n int) (int, error) {
	m, err := c.br.Discard(n)
	c.n += int64(m)
	return m, err
}

// BinaryReader decodes tuples written by BinaryWriter.
type BinaryReader struct {
	r      *countingReader
	schema *Schema
	fields []string

	// arena stages one tuple's raw field bytes during batch decoding so the
	// whole record costs a single string allocation.
	arena []byte
	lens  []int
	pos   int64
}

// NewBinaryReader reads the header and returns a reader positioned at the
// first tuple.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: &countingReader{br: bufio.NewReaderSize(r, 1<<16)}}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("stream: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("stream: not a binary stream file")
	}
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, fmt.Errorf("stream: binary header: %w", err)
	}
	if n == 0 || n > 4096 {
		return nil, fmt.Errorf("stream: implausible attribute count %d", n)
	}
	names := make([]string, n)
	for i := range names {
		v, err := br.value(1 << 16)
		if err != nil {
			return nil, fmt.Errorf("stream: binary header: %w", err)
		}
		names[i] = v
	}
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, fmt.Errorf("stream: bad binary header: %w", err)
	}
	br.schema = schema
	br.fields = make([]string, n)
	return br, nil
}

func (r *BinaryReader) value(maxLen uint64) (string, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("value length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	return string(buf), nil
}

// Schema returns the schema read from the header.
func (r *BinaryReader) Schema() *Schema { return r.schema }

// ByteOffset returns the number of input bytes consumed so far — the
// position decode errors report, so a corrupt frame can be located in the
// stream (or in a server's ingest payload) without bisecting.
func (r *BinaryReader) ByteOffset() int64 { return r.r.n }

// recordErr annotates a record-level decode failure with the byte offset
// and tuple index the reader had reached.
func (r *BinaryReader) recordErr(err error) error {
	return fmt.Errorf("stream: binary record at byte offset %d (after tuple %d): %w", r.r.n, r.pos, err)
}

// Next implements Source. The returned tuple aliases an internal buffer and
// is only valid until the next call.
func (r *BinaryReader) Next() (Tuple, error) {
	for i := range r.fields {
		v, err := r.value(1 << 24)
		if err != nil {
			if i == 0 && err == io.EOF {
				return nil, io.EOF
			}
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, r.recordErr(err)
		}
		r.fields[i] = v
	}
	r.pos++
	return Tuple(r.fields), nil
}

// NextBatch implements BatchSource: it decodes up to len(dst) tuples,
// reusing each slot's field slice across calls. Each record's field bytes
// are staged in a shared arena and converted with one string allocation per
// tuple (instead of one per field), which roughly halves decode cost on
// wide schemas. Returns the number of tuples decoded and io.EOF once the
// stream is exhausted.
func (r *BinaryReader) NextBatch(dst []Tuple) (int, error) {
	arity := len(r.fields)
	for k := range dst {
		r.arena = r.arena[:0]
		r.lens = r.lens[:0]
		for i := 0; i < arity; i++ {
			n, err := binary.ReadUvarint(r.r)
			if err != nil {
				if i == 0 && err == io.EOF {
					return k, io.EOF
				}
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return k, r.recordErr(err)
			}
			if n > 1<<24 {
				return k, r.recordErr(fmt.Errorf("value length %d exceeds limit", n))
			}
			off := len(r.arena)
			r.arena = slices.Grow(r.arena, int(n))[:off+int(n)]
			if _, err := io.ReadFull(r.r, r.arena[off:]); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return k, r.recordErr(err)
			}
			r.lens = append(r.lens, int(n))
		}
		if cap(dst[k]) < arity {
			dst[k] = make(Tuple, arity)
		}
		dst[k] = dst[k][:arity]
		rec := string(r.arena)
		off := 0
		for i, n := range r.lens {
			dst[k][i] = rec[off : off+n]
			off += n
		}
		r.pos++
	}
	return len(dst), nil
}

// OpenReader sniffs the format (binary magic vs text header) and returns
// the right Source together with its schema. The reader must support
// peeking from the start of the stream.
func OpenReader(r io.Reader) (Source, *Schema, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		b, err := NewBinaryReader(br)
		if err != nil {
			return nil, nil, err
		}
		return b, b.Schema(), nil
	}
	t, err := NewReader(br)
	if err != nil {
		return nil, nil, err
	}
	return t, t.Schema(), nil
}
