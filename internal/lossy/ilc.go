package lossy

import (
	"fmt"
	"sort"

	"implicate/internal/imps"
)

// ILC is Implication Lossy Counting (§5.1): Lossy Counting extended to
// sample entries for both itemsets (a, support, Δ) and pairs
// ((a,b), support, Δ), with dirty marking for itemsets that met the
// minimum-support requirement but violated multiplicity or top-confidence.
//
// Two properties distinguish it from NIPS/CI, and the paper proves both are
// disqualifying for implication counts (§5.1.1): the minimum support must
// be RELATIVE to the evolving stream length (and exceed ε), so the
// cumulative effect of small implications is lost as the stream grows; and
// every dirty itemset stays in memory forever.
type ILC struct {
	cond imps.Conditions
	// RelSupport is s_rel, the relative minimum support; must exceed eps.
	relSupport float64
	eps        float64
	width      int64
	n          int64

	as      map[string]*ilcEntry
	pairs   map[string]map[string]*entry
}

type ilcEntry struct {
	count int64
	delta int64
	dirty bool
}

// NewILC returns an ILC instance. relSupport is the relative minimum
// support (fraction of the stream); eps the approximation parameter, which
// must satisfy eps <= relSupport. The absolute MinSupport field of cond is
// ignored — that is precisely the limitation §5.1.1 establishes.
func NewILC(cond imps.Conditions, relSupport, eps float64) (*ILC, error) {
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("lossy: eps must be in (0,1), got %g", eps)
	}
	if relSupport < eps || relSupport >= 1 {
		return nil, fmt.Errorf("lossy: relative support %g must be in [eps, 1)", relSupport)
	}
	return &ILC{
		cond:       cond,
		relSupport: relSupport,
		eps:        eps,
		width:      int64(1/eps + 0.5),
		as:         make(map[string]*ilcEntry),
		pairs:      make(map[string]map[string]*entry),
	}, nil
}

// MustILC is NewILC panicking on error.
func MustILC(cond imps.Conditions, relSupport, eps float64) *ILC {
	c, err := NewILC(cond, relSupport, eps)
	if err != nil {
		panic(err)
	}
	return c
}

// Add observes one tuple.
func (c *ILC) Add(a, b string) {
	c.n++
	bcur := (c.n-1)/c.width + 1

	ae := c.as[a]
	if ae == nil {
		ae = &ilcEntry{count: 1, delta: bcur - 1}
		c.as[a] = ae
	} else {
		ae.count++
	}

	if !ae.dirty {
		pm := c.pairs[a]
		if pm == nil {
			pm = make(map[string]*entry, 1)
			c.pairs[a] = pm
		}
		if pe := pm[b]; pe != nil {
			pe.count++
		} else {
			pm[b] = &entry{count: 1, delta: bcur - 1}
		}
		// Check the implication conditions once the (relative) minimum
		// support is met; on violation mark dirty and free the pairs
		// (§5.1: "mark the corresponding sample entry as dirty and delete
		// all the pair entries for that itemset").
		if c.meetsSupport(ae) && !c.satisfies(ae, pm) {
			ae.dirty = true
			delete(c.pairs, a)
		}
	}

	if c.n%c.width == 0 {
		c.prune(bcur)
	}
}

// meetsSupport applies the output rule of Lossy Counting to the itemset
// support: count ≥ (s_rel − ε)·N.
func (c *ILC) meetsSupport(ae *ilcEntry) bool {
	return float64(ae.count) >= (c.relSupport-c.eps)*float64(c.n)
}

// satisfies checks multiplicity and top-confidence against the tracked pair
// entries; pair counts are taken at their upper bound (count + Δ) so pruned
// prefixes do not trigger spurious violations.
//
// The query methods call satisfies too, and concurrent wrappers run them
// under a shared read lock, so it must not touch shared state: the counts
// are staged in a stack buffer (pm holds at most K+1 entries, so the buffer
// spills to the heap only for outsized K).
func (c *ILC) satisfies(ae *ilcEntry, pm map[string]*entry) bool {
	if len(pm) > c.cond.MaxMultiplicity {
		return false
	}
	var buf [8]int64
	scratch := buf[:0]
	for _, pe := range pm {
		scratch = append(scratch, pe.count+pe.delta)
	}
	return imps.TopConfidence(scratch, c.cond.TopC, ae.count) >= c.cond.MinTopConfidence
}

func (c *ILC) prune(bcur int64) {
	for a, ae := range c.as {
		if ae.dirty {
			continue // dirty entries are pinned forever (§5.1.1)
		}
		if ae.count+ae.delta <= bcur {
			delete(c.as, a)
			delete(c.pairs, a)
			continue
		}
		if pm := c.pairs[a]; pm != nil {
			for b, pe := range pm {
				if pe.count+pe.delta <= bcur {
					delete(pm, b)
				}
			}
		}
	}
}

// ImplicationCount counts the non-dirty itemsets that meet the relative
// support and still satisfy the implication conditions.
func (c *ILC) ImplicationCount() float64 {
	var s float64
	for a, ae := range c.as {
		if !ae.dirty && c.meetsSupport(ae) && c.satisfies(ae, c.pairs[a]) {
			s++
		}
	}
	return s
}

// NonImplicationCount counts the dirty itemsets.
func (c *ILC) NonImplicationCount() float64 {
	var s float64
	for _, ae := range c.as {
		if ae.dirty {
			s++
		}
	}
	return s
}

// SupportedDistinct counts itemsets meeting the relative support rule
// (dirty or not).
func (c *ILC) SupportedDistinct() float64 {
	var s float64
	for _, ae := range c.as {
		if ae.dirty || c.meetsSupport(ae) {
			s++
		}
	}
	return s
}

// AvgMultiplicity returns the mean number of tracked distinct B-partners
// over the itemsets currently counted.
func (c *ILC) AvgMultiplicity() float64 {
	var n, sum float64
	for a, ae := range c.as {
		if !ae.dirty && c.meetsSupport(ae) && c.satisfies(ae, c.pairs[a]) {
			n++
			sum += float64(len(c.pairs[a]))
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Implicating returns the itemsets currently counted — the identification
// capability that distinguishes ILC from NIPS/CI, bought at the memory cost
// §5.1.1 quantifies.
func (c *ILC) Implicating() []string {
	var out []string
	for a, ae := range c.as {
		if !ae.dirty && c.meetsSupport(ae) && c.satisfies(ae, c.pairs[a]) {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Tuples returns the number of tuples observed.
func (c *ILC) Tuples() int64 { return c.n }

// MemEntries reports live sample entries (itemsets plus pairs).
func (c *ILC) MemEntries() int {
	n := len(c.as)
	for _, pm := range c.pairs {
		n += len(pm)
	}
	return n
}

var _ imps.Estimator = (*ILC)(nil)
var _ imps.MultiplicityAverager = (*ILC)(nil)
