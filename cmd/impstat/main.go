// Command impstat runs implication queries over a stream file and prints
// the estimated counts, optionally comparing estimator backends.
//
// Usage:
//
//	impstat -q "SELECT COUNT(DISTINCT Destination) FROM t WHERE Destination IMPLIES Source" traffic.tsv
//	impstat -q "..." -backend all -interval 100000 traffic.tsv
//	impstat -q "..." -checkpoint run.ckpt -every 100000 traffic.tsv
//	impstat -resume run.ckpt traffic.tsv
//
// The -backend flag selects nips (default), exact, ilc, ds, or all; with
// -interval the counts are printed every that many tuples, turning the tool
// into the §6.2 error-vs-stream-size probe.
//
// With -checkpoint the engine's full state (queries included) is written
// atomically to the named file every -every tuples and again at the end of
// the stream. After a crash, -resume restores the engine from the file,
// skips the stream to the recorded offset and continues — so a killed run
// resumed over the same file finishes with the same counts it would have
// produced uninterrupted. Corrupt checkpoints are rejected, never
// restored.
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("impstat: ")

	cfg, rest, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}
	if len(rest) != 1 {
		log.Fatal("expected exactly one stream file argument (use impgen to create one)")
	}
	f, err := os.Open(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := run(cfg, f, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
