package tenant

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

const testSQL = "SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 1, MULTIPLICITY <= 64, CONFIDENCE >= 0.0"

func testSchema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("A", "B")
}

func testBackends() Backends {
	return Backends{"exact": func(cond imps.Conditions) (imps.Estimator, error) {
		return exact.NewCounter(cond)
	}}
}

func testConfig(name string) Config {
	return Config{Name: name, Queries: []string{testSQL}, Backend: "exact"}
}

func TestValidName(t *testing.T) {
	for _, good := range []string{"a", "acme", "Acme-2.prod_x", strings.Repeat("n", MaxNameLen)} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false", good)
		}
	}
	for _, bad := range []string{"", DefaultName, ".", "..", "a/b", "a\\b", "a b", "ü", strings.Repeat("n", MaxNameLen+1)} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	schema, backends := testSchema(t), testBackends()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bad name", testConfig("no/slash")},
		{"reserved", testConfig(DefaultName)},
		{"no queries", Config{Name: "t", Backend: "exact"}},
		{"bad backend", Config{Name: "t", Queries: []string{testSQL}, Backend: "nope"}},
		{"negative", Config{Name: "t", Queries: []string{testSQL}, Backend: "exact", Rate: -1}},
	} {
		if _, _, err := New(tc.cfg, schema, backends, "", 0); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRateQuota(t *testing.T) {
	cfg := testConfig("t")
	cfg.Rate = 1000
	cfg.Burst = 500
	tn, resumed, err := New(cfg, testSchema(t), testBackends(), "", 0)
	if err != nil || resumed {
		t.Fatalf("New: %v resumed=%v", err, resumed)
	}
	now := time.Unix(1000, 0)
	if q := tn.Admit(500, now); q != nil {
		t.Fatalf("burst-sized batch refused: %v", q)
	}
	q := tn.Admit(100, now)
	if q == nil {
		t.Fatal("over-rate batch admitted")
	}
	if q.RetryAfter <= 0 || q.RetryAfter > time.Second {
		t.Fatalf("retry hint %v, want ~100ms", q.RetryAfter)
	}
	// 100ms refills 100 tokens at 1000/s.
	if q := tn.Admit(100, now.Add(100*time.Millisecond)); q != nil {
		t.Fatalf("refilled batch refused: %v", q)
	}
	if got := tn.Stats().QuotaRefusals; got != 1 {
		t.Fatalf("quota refusals %d, want 1", got)
	}
}

func TestMemQuota(t *testing.T) {
	cfg := testConfig("t")
	cfg.MemBudget = 1 // one byte: any applied state trips it
	tn, _, err := New(cfg, testSchema(t), testBackends(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	if q := tn.Admit(10, now); q != nil {
		t.Fatalf("empty tenant refused: %v", q)
	}
	// Apply a tuple directly and refresh the assessment the way the pool
	// callback does.
	for _, st := range tn.Engine().Statements() {
		st.ProcessBatchExclusive([]stream.Tuple{{"a", "b"}})
	}
	tn.NoteApplied(1)
	q := tn.Admit(10, now)
	if q == nil {
		t.Fatal("over-budget tenant admitted")
	}
	if q.RetryAfter != 0 {
		t.Fatalf("memory refusal carries retry hint %v, want 0", q.RetryAfter)
	}
	if st := tn.Stats(); st.MemBytes == 0 || st.MemBudget != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	schema, backends := testSchema(t), testBackends()
	tn, resumed, err := New(testConfig("acme"), schema, backends, dir, 0)
	if err != nil || resumed {
		t.Fatalf("New: %v resumed=%v", err, resumed)
	}
	for _, st := range tn.Engine().Statements() {
		st.ProcessBatchExclusive([]stream.Tuple{{"a", "b"}, {"c", "d"}})
	}
	tn.Engine().AddTuples(2)
	if err := tn.FinalCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if tn.CheckpointPath() != filepath.Join(dir, "acme.ckpt") {
		t.Fatalf("checkpoint path %q", tn.CheckpointPath())
	}

	re, resumed, err := New(testConfig("acme"), schema, backends, dir, 0)
	if err != nil || !resumed {
		t.Fatalf("resume: %v resumed=%v", err, resumed)
	}
	if re.Engine().Tuples() != 2 {
		t.Fatalf("resumed tuples %d, want 2", re.Engine().Tuples())
	}
	want, _ := tn.Engine().MarshalBinary()
	got, _ := re.Engine().MarshalBinary()
	if string(want) != string(got) {
		t.Fatal("resumed engine state differs from checkpointed state")
	}
}

func TestRegistryAuth(t *testing.T) {
	key := []byte("server-key")
	r := NewRegistry(key)
	tn, _, err := New(testConfig("acme"), testSchema(t), testBackends(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(tn); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(tn); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	tok := Token(key, "acme")
	if got, err := r.Authenticate("acme", tok); err != nil || got != tn {
		t.Fatalf("good token refused: %v", err)
	}
	if _, err := r.Authenticate("acme", "wrong"); err == nil {
		t.Fatal("bad token accepted")
	}
	if _, err := r.Authenticate("ghost", Token(key, "ghost")); err == nil {
		t.Fatal("unknown tenant accepted")
	}

	// Keyless registries accept any token for existing tenants only.
	open := NewRegistry(nil)
	open.Add(tn)
	if _, err := open.Authenticate("acme", "anything"); err != nil {
		t.Fatalf("keyless auth refused: %v", err)
	}
	if _, err := open.Authenticate("ghost", "anything"); err == nil {
		t.Fatal("keyless auth invented a tenant")
	}

	if got := len(r.List()); got != 1 || r.Len() != 1 {
		t.Fatalf("list %d len %d", got, r.Len())
	}
	if _, ok := r.Remove("acme"); !ok {
		t.Fatal("remove failed")
	}
	if _, ok := r.Get("acme"); ok {
		t.Fatal("removed tenant still resolves")
	}
}
