package obs

import (
	"fmt"

	"implicate/internal/imps"
	"implicate/internal/wire"
)

// The Health and Trace RPC payload encodings. Like the telemetry snapshot
// (and unlike ingest batches), they have versioned magics of their own: the
// frame layer authenticates bytes, the payload codec proves structure.
// Spans have two versions: v1 is the pre-fleet 37-byte record, v2 appends
// the causal identity (trace id, parent span id, own span id). The encoder
// emits v1 whenever no span carries identity — a single node that never
// saw a traced frame keeps producing byte-identical dumps, so old readers
// keep working — and v2 only when the extra fields carry information.
const (
	spansMagic   = "IMPS\x01"
	spansMagicV2 = "IMPS\x02"
	healthMagic  = "IMPH\x01"
)

// maxDumpSpans bounds a decoded span dump; a frame claiming more is corrupt
// (no tracer ships rings anywhere near this deep).
const maxDumpSpans = 1 << 20

// maxHealthReports bounds a decoded health dump — one report per registered
// statement, so anything huge is corruption, not scale.
const maxHealthReports = 1 << 16

// EncodeSpans serializes a span dump for the Trace RPC: v1 when no span
// carries causal identity, v2 otherwise.
func EncodeSpans(spans []Span) []byte {
	linked := false
	for i := range spans {
		if spans[i].Trace != 0 || spans[i].Parent != 0 || spans[i].ID != 0 {
			linked = true
			break
		}
	}
	e := wire.NewEncoder(16 + len(spans)*61)
	if linked {
		e.Raw([]byte(spansMagicV2))
	} else {
		e.Raw([]byte(spansMagic))
	}
	e.U32(uint32(len(spans)))
	for i := range spans {
		s := &spans[i]
		e.U64(s.Seq)
		e.U8(uint8(s.Kind))
		e.U32(uint32(s.Arg))
		e.I64(s.Start)
		e.I64(s.Dur)
		e.I64(s.Units)
		if linked {
			e.U64(s.Trace)
			e.U64(s.Parent)
			e.U64(s.ID)
		}
	}
	return e.Bytes()
}

// decodeSpanInto reads one span record (v1: 37 bytes; v2: +24 bytes of
// causal identity), validating the kind.
func decodeSpanInto(d *wire.Decoder, s *Span, linked bool) {
	s.Seq = d.U64()
	s.Kind = SpanKind(d.U8())
	s.Arg = int32(d.U32())
	s.Start = d.I64()
	s.Dur = d.I64()
	s.Units = d.I64()
	if linked {
		s.Trace = d.U64()
		s.Parent = d.U64()
		s.ID = d.U64()
	}
	if s.Kind >= numSpanKinds {
		d.Failf("unknown span kind %d", s.Kind)
	}
}

// DecodeSpans parses a span dump (either version), rejecting structurally
// implausible input.
func DecodeSpans(data []byte) ([]Span, error) {
	d := wire.NewDecoder(data)
	linked := len(data) >= len(spansMagicV2) && string(data[:len(spansMagicV2)]) == spansMagicV2
	size := 37
	if linked {
		d.Magic(spansMagicV2)
		size = 61
	} else {
		d.Magic(spansMagic)
	}
	n := d.Count(size)
	if d.Err() == nil && n > maxDumpSpans {
		return nil, fmt.Errorf("%w: span dump claims %d spans", wire.ErrCorrupt, n)
	}
	var spans []Span
	if d.Err() == nil && n > 0 {
		spans = make([]Span, n)
		for i := 0; i < n; i++ {
			decodeSpanInto(d, &spans[i], linked)
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return spans, nil
}

// EncodeHealth serializes the engine's health reports for the Health RPC.
func EncodeHealth(reports []imps.HealthReport) []byte {
	e := wire.NewEncoder(16 + len(reports)*128)
	e.Raw([]byte(healthMagic))
	e.U32(uint32(len(reports)))
	for i := range reports {
		h := &reports[i]
		e.U32(uint32(h.Stmt))
		e.Str(h.Kind)
		e.Str(h.Query)
		e.Bool(h.Shared)
		e.I64(h.Tuples)
		e.I64(int64(h.MemEntries))
		e.I64(h.MemBytes)
		e.F64(h.BitmapFill)
		e.F64(h.LeftmostZero)
		e.I64(int64(h.FringeTracked))
		e.I64(int64(h.FringePairs))
		e.I64(int64(h.FringeTombstones))
		e.I64(h.FringeEvictions)
		e.I64(int64(h.FringeWidth))
		e.F64(h.RelErr)
	}
	return e.Bytes()
}

// DecodeHealth parses a health dump, rejecting structurally implausible
// input. Non-finite RelErr values are legitimate (an empty estimator
// reports +Inf — it cannot bound its error), so floats are not validated
// beyond their encoding.
func DecodeHealth(data []byte) ([]imps.HealthReport, error) {
	d := wire.NewDecoder(data)
	d.Magic(healthMagic)
	n := d.Count(64)
	if d.Err() == nil && n > maxHealthReports {
		return nil, fmt.Errorf("%w: health dump claims %d reports", wire.ErrCorrupt, n)
	}
	var reports []imps.HealthReport
	if d.Err() == nil && n > 0 {
		reports = make([]imps.HealthReport, n)
		for i := 0; i < n; i++ {
			h := &reports[i]
			h.Stmt = int(d.U32())
			h.Kind = d.Str(256)
			h.Query = d.Str(1 << 16)
			h.Shared = d.Bool()
			h.Tuples = d.I64()
			h.MemEntries = int(d.I64())
			h.MemBytes = d.I64()
			h.BitmapFill = d.F64()
			h.LeftmostZero = d.F64()
			h.FringeTracked = int(d.I64())
			h.FringePairs = int(d.I64())
			h.FringeTombstones = int(d.I64())
			h.FringeEvictions = d.I64()
			h.FringeWidth = int(d.I64())
			h.RelErr = d.F64()
			if h.Tuples < 0 || h.MemEntries < 0 || h.MemBytes < 0 {
				d.Failf("negative health counter in report %d", i)
			}
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return reports, nil
}
