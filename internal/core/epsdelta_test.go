package core

import (
	"math"
	"math/rand"
	"testing"

	"implicate/internal/imps"
)

func TestNewEpsDeltaValidation(t *testing.T) {
	cond := testConditions()
	if _, err := NewEpsDelta(cond, Options{}, 0); err == nil {
		t.Error("g=0 accepted")
	}
	if _, err := NewEpsDelta(cond, Options{}, 4); err == nil {
		t.Error("even g accepted")
	}
	if _, err := NewEpsDelta(imps.Conditions{}, Options{}, 3); err == nil {
		t.Error("bad conditions accepted")
	}
	if _, err := NewEpsDelta(cond, Options{}, 3); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsFor(t *testing.T) {
	if g := GroupsFor(0.05); g%2 == 0 || g < 3 {
		t.Fatalf("GroupsFor(0.05) = %d", g)
	}
	if g := GroupsFor(0); g != 1 {
		t.Fatalf("GroupsFor(0) = %d", g)
	}
	if GroupsFor(0.001) <= GroupsFor(0.1) {
		t.Fatal("smaller δ must need more groups")
	}
}

// TestEpsDeltaTailSuppression: across many trials the median-of-groups
// estimator must have fewer large deviations than a single sketch — the
// whole point of the amplification.
func TestEpsDeltaTailSuppression(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 4, TopC: 1, MinTopConfidence: 0.8}
	const truth = 600.0
	const trials = 30
	const tail = 0.18 // deviation considered "large"
	singleTails, medianTails := 0, 0
	for trial := 0; trial < trials; trial++ {
		single := MustSketch(cond, Options{Seed: uint64(trial*101 + 7)})
		med, err := NewEpsDelta(cond, Options{Seed: uint64(trial*900 + 13)}, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(trial)))
		type pair struct{ a, b uint64 }
		var tuples []pair
		for i := 0; i < int(truth); i++ {
			for k := 0; k < 6; k++ {
				tuples = append(tuples, pair{uint64(i), uint64(100000 + i)})
			}
		}
		for i := 0; i < 1200; i++ {
			for k := 0; k < 6; k++ {
				tuples = append(tuples, pair{uint64(50000 + i), uint64(200000 + i*8 + k%4)})
			}
		}
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, tp := range tuples {
			single.AddIDs(tp.a, tp.b)
			med.AddIDs(tp.a, tp.b)
		}
		if math.Abs(single.ImplicationCount()-truth)/truth > tail {
			singleTails++
		}
		if math.Abs(med.ImplicationCount()-truth)/truth > tail {
			medianTails++
		}
	}
	if medianTails > singleTails {
		t.Fatalf("median-of-5 had %d large deviations vs single's %d", medianTails, singleTails)
	}
	if medianTails > trials/4 {
		t.Fatalf("median estimator exceeded the %.0f%% band in %d/%d trials", tail*100, medianTails, trials)
	}
}

func TestEpsDeltaDelegation(t *testing.T) {
	cond := testConditions()
	e, err := NewEpsDelta(cond, Options{Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		for k := 0; k < 4; k++ {
			e.Add(string(rune('A'+i%26))+"x", "p")
		}
	}
	if e.Tuples() != 800 {
		t.Fatalf("Tuples = %d", e.Tuples())
	}
	if e.Groups() != 3 {
		t.Fatalf("Groups = %d", e.Groups())
	}
	if e.MemEntries() <= 0 {
		t.Fatal("MemEntries not positive")
	}
	if e.NonImplicationCount() < 0 || e.SupportedDistinct() < 0 || e.AvgMultiplicity() < 0 {
		t.Fatal("negative estimates")
	}
}
