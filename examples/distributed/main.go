// Distributed runs the sensor-network aggregation setting of §2 over a real
// network, managed by the coordinator subsystem (DESIGN.md §13): eight leaf
// nodes are impserved instances on loopback TCP, fronted by a Coordinator
// that consistent-hash-routes every tuple to exactly one leaf, journals and
// delivers batches in order, and answers the global implication query by
// pulling and merging leaf state through the Snapshot RPC. The producer
// talks to the coordinator's wire front-end exactly as it would to a single
// server — it holds no shards, no offsets, no recovery logic.
//
// Constrained nodes also die. One leaf checkpoints its engine to local
// storage as it ingests and is kill()ed mid-stream — connections cut,
// queued batches lost, no final checkpoint. Nobody replays anything by
// hand: the coordinator's prober notices the silence, the Restart hook
// restores the last checkpoint into a fresh server, and the coordinator
// replays its journal from the restored batch boundary before re-admitting
// the leaf. An incarnation fence on every delivery guarantees no batch ever
// reaches the restarted process before that alignment happens. The merged
// root count is bit-identical to an uncrashed shadow fleet fed the same
// stream: the aggregation tree cannot tell there was ever a failure.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"implicate"
	"implicate/internal/gen"
	"implicate/internal/stream"
)

const (
	leaves        = 8
	tuplesPerLeaf = 150_000
	total         = leaves * tuplesPerLeaf

	crashLeaf = 5             // the leaf that dies
	crashAt   = total * 3 / 5 // global tuple index of the crash
	ckptEvery = 20_000        // leaf-applied tuples between checkpoints
	batchSize = 1_000         // tuples per IngestBatch RPC
)

var genConfig = gen.NetTrafficConfig{
	Seed: 17, Sources: 30_000, Destinations: 8_000,
	FlashSources: 2_000, FlashTargets: 1, FlashAfter: 400_000,
}

const sql = `SELECT COUNT(DISTINCT Source) FROM traffic
	WHERE Source IMPLIES Destination
	WITH SUPPORT >= 12, MULTIPLICITY <= 2, CONFIDENCE >= 0.9 TOP 1`

// leafBackend builds merge-compatible sketches: identical options on every
// node, explicit seed, so the coordinator's merge fan-in can fold any
// leaf's state into any other's.
func leafBackend(cond implicate.Conditions) (implicate.Estimator, error) {
	return implicate.NewSketch(cond, implicate.Options{Seed: 99})
}

func newEngine(schema *implicate.Schema) *implicate.Engine {
	eng := implicate.NewEngine(schema)
	if _, err := eng.RegisterSQL(sql, leafBackend); err != nil {
		log.Fatal(err)
	}
	return eng
}

// startLeaf serves a fresh engine on a loopback port; ckptPath enables the
// crash-recovery checkpoint loop.
func startLeaf(schema *implicate.Schema, eng *implicate.Engine, ckptPath string) *implicate.Server {
	srv, err := implicate.Serve(implicate.ServerConfig{
		Addr:            "127.0.0.1:0",
		Schema:          schema,
		Engine:          eng,
		CheckpointPath:  ckptPath,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	return srv
}

// startFleet boots n leaves and a coordinator over them. Leaf NAMES are the
// stable routing identities — two fleets with the same names route every
// tuple identically regardless of which ports their leaves landed on, which
// is what makes the shadow comparison below meaningful.
func startFleet(schema *implicate.Schema, ckptPath string, restart func(string) (string, error)) ([]*implicate.Server, *implicate.Coordinator) {
	srvs := make([]*implicate.Server, leaves)
	specs := make([]implicate.LeafSpec, leaves)
	for i := range srvs {
		path := ""
		if i == crashLeaf && ckptPath != "" {
			path = ckptPath
		}
		srvs[i] = startLeaf(schema, newEngine(schema), path)
		specs[i] = implicate.LeafSpec{Name: fmt.Sprintf("leaf%d", i), Addr: srvs[i].Addr()}
	}
	co, err := implicate.NewCoordinator(implicate.CoordinatorConfig{
		Schema:      schema,
		Statements:  []string{sql},
		Leaves:      specs,
		FlushTuples: batchSize,
		Restart:     restart,
	})
	if err != nil {
		log.Fatal(err)
	}
	return srvs, co
}

func main() {
	// Global question: how many sources talk to a single destination at
	// least 90% of the time? (Sources are spread across leaves by the route
	// table, so no leaf can answer alone.)
	cond := implicate.Conditions{
		MaxMultiplicity:  2,
		MinSupport:       12,
		TopC:             1,
		MinTopConfidence: 0.9,
	}

	// Ground truth across the whole stream.
	truth, err := implicate.NewExact(cond)
	if err != nil {
		log.Fatal(err)
	}

	g := gen.NewNetTraffic(genConfig)
	schema := gen.NetTrafficSchema()
	src := schema.MustProj("Source")
	dst := schema.MustProj("Destination")

	ckptDir, err := os.MkdirTemp("", "implicate-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckptPath := filepath.Join(ckptDir, "leaf5.ckpt")

	// The live fleet. Its Restart hook is the whole operator playbook:
	// restore the checkpoint into a fresh server and report where it
	// listens — journal alignment and replay are the coordinator's job.
	var srvs []*implicate.Server
	recovered := false
	restart := func(name string) (string, error) {
		if name != fmt.Sprintf("leaf%d", crashLeaf) {
			return "", nil // any other leaf is a transient blip; same address
		}
		snap, err := implicate.ReadCheckpoint(ckptPath)
		if err != nil {
			return "", err
		}
		eng, err := implicate.RestoreCheckpoint(snap, schema, nil)
		if err != nil {
			return "", err
		}
		srvs[crashLeaf] = startLeaf(schema, eng, ckptPath)
		recovered = true
		fmt.Printf("  leaf %d: restored checkpoint at offset %d, serving on %s\n",
			crashLeaf, snap.Offset, srvs[crashLeaf].Addr())
		return srvs[crashLeaf].Addr(), nil
	}
	srvs, co := startFleet(schema, ckptPath, restart)

	// The wire front-end: the producer below speaks to the fleet through the
	// same client and the same RPCs it would use against one impserved.
	fe, err := implicate.ServeCoordinator(co, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := implicate.Dial(fe.Addr(), schema, implicate.ClientOptions{BusyRetries: -1})
	if err != nil {
		log.Fatal(err)
	}

	// The shadow fleet never crashes. Same leaf names => same routing; it is
	// the yardstick for "recovery loses nothing".
	shadowSrvs, shadow := startFleet(schema, "", nil)

	// One producer, one stream, no shard bookkeeping. The victim dies at
	// crashAt; the producer never notices — batches routed to the dead leaf
	// queue in the coordinator's journal until recovery replays them.
	var batch []stream.Tuple
	var rawBytes int64
	send := func() {
		if len(batch) == 0 {
			return
		}
		if err := cl.IngestBatch(batch); err != nil {
			log.Fatal(err)
		}
		if err := shadow.Ingest(batch); err != nil {
			log.Fatal(err)
		}
		batch = nil // both fleets retain the tuples until journaled
	}
	for i := int64(0); i < total; i++ {
		t, err := g.Next()
		if err != nil {
			log.Fatal(err)
		}
		a, b := src.Key(t), dst.Key(t)
		truth.Add(a, b)
		rawBytes += int64(len(a) + len(b))

		batch = append(batch, append(stream.Tuple(nil), t...))
		if len(batch) >= batchSize {
			send()
		}
		if i == crashAt {
			// The node dies abruptly: connections cut, its queued batches
			// lost, no final checkpoint. Only the periodic checkpoint file
			// survives.
			srvs[crashLeaf].Kill()
			fmt.Printf("  leaf %d: killed at global tuple %d\n", crashLeaf, i)
		}
	}
	send()

	// Flush = the fleet-wide quiesce: every journaled batch delivered AND
	// applied — which forces the victim's recovery to have completed.
	if err := co.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := shadow.Flush(); err != nil {
		log.Fatal(err)
	}
	if !recovered {
		log.Fatal("the crash was never recovered — probe or restart hook misconfigured")
	}

	// The global answer comes off the front-end through the ordinary Query
	// RPC; the coordinator merges leaf snapshots behind it.
	res, err := cl.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	want, err := shadow.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	if math.Float64bits(res.Count) != math.Float64bits(want.Count) || res.Tuples != want.Tuples {
		log.Fatalf("crashed fleet answered %v over %d tuples; uncrashed shadow %v over %d",
			res.Count, res.Tuples, want.Count, want.Tuples)
	}

	// Stronger than count equality: the merged sketch STATE is bit-identical,
	// pulled over the wire from the recovered fleet vs in-process from the
	// shadow.
	snap, err := cl.Snapshot(0)
	if err != nil {
		log.Fatal(err)
	}
	shadowSnap, err := shadow.Snapshot(0)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(snap.Sketch, shadowSnap.Sketch) {
		log.Fatal("merged fleet state diverged from the uncrashed shadow")
	}

	// Membership view: the victim's epoch counts its completed recovery.
	status, err := cl.Cluster()
	if err != nil {
		log.Fatal(err)
	}

	cl.Close()
	fe.Close()
	co.Close()
	shadow.Close()
	for _, s := range append(srvs, shadowSrvs...) {
		s.Close()
	}

	rootSketch, err := implicate.UnmarshalSketch(snap.Sketch)
	if err != nil {
		log.Fatal(err)
	}
	est := rootSketch.ImplicationCount()
	lo, hi := rootSketch.ImplicationCountInterval(2)
	exact := truth.ImplicationCount()
	fmt.Printf("distributed: %d leaf servers, coordinator-routed over loopback TCP\n", leaves)
	fmt.Printf("  fleet over %d virtual partitions:\n", status.VirtualPartitions)
	for i, lf := range status.Leaves {
		fmt.Printf("    leaf%d %s: epoch=%d parts=%d journaled=%d\n", i, lf.Addr, lf.Epoch, lf.Parts, lf.Journaled)
	}
	fmt.Printf("  root count vs uncrashed shadow fleet: bit-identical (%.0f over %d tuples)\n", res.Count, res.Tuples)
	fmt.Printf("  merged sketch state vs shadow:        bit-identical (%d bytes)\n", len(snap.Sketch))
	fmt.Printf("  exact single-destination sources: %.0f\n", exact)
	fmt.Printf("  merged-sketch estimate:           %.0f  (95%% interval [%.0f, %.0f])\n", est, lo, hi)
	fmt.Printf("  relative error:                   %.1f%%\n", 100*abs(est-exact)/exact)
	fmt.Printf("  state pulled per fleet snapshot:  %d bytes (raw stream is %d — %.0fx more)\n",
		len(snap.Sketch), rawBytes, float64(rawBytes)/float64(len(snap.Sketch)))
	fmt.Printf("  root memory:                      %d counter entries\n", rootSketch.MemEntries())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
