package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"implicate/internal/checkpoint"
	"implicate/internal/client"
	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/query"
	"implicate/internal/stream"
)

// determinismEngine registers a mixed statement set spanning both
// concurrency classes: partition-safe (sharded sketch, striped exact)
// statements fan out across pool workers, serialized ones (plain sketch,
// exact counter) run on their home worker, and a NOT IMPLIES alias shares
// the sharded estimator (sharing keys on the backend function pointer, so
// the alias registers with the identical closure). Conditions differ per
// statement so none share by accident.
func determinismEngine(t *testing.T, schema *stream.Schema, seed uint64) *query.Engine {
	t.Helper()
	sharded := func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewShardedSketch(cond, core.Options{Seed: seed}, 4)
	}
	regs := []struct {
		sql     string
		backend query.Backend
	}{
		{`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`, sharded},
		{`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
			func(cond imps.Conditions) (imps.Estimator, error) { return exact.NewStriped(cond, 4) }},
		{`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 4, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
			func(cond imps.Conditions) (imps.Estimator, error) {
				return core.NewSketch(cond, core.Options{Seed: seed})
			}},
		{`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 5, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
			func(cond imps.Conditions) (imps.Estimator, error) { return exact.NewCounter(cond) }},
		{`SELECT COUNT(DISTINCT A) FROM t WHERE A NOT IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`, sharded},
	}
	eng := query.NewEngine(schema)
	for _, r := range regs {
		if _, err := eng.RegisterSQL(r.sql, r.backend); err != nil {
			t.Fatalf("register %q: %v", r.sql, err)
		}
	}
	if !eng.Statements()[len(regs)-1].Shared() {
		t.Fatal("test setup: NOT IMPLIES statement did not share")
	}
	return eng
}

// determinismBatches builds an ordered batch sequence with enough key
// repetition to move fringes, overflow-kill items and hit every service of
// the workload.
func determinismBatches(nBatches, batchSize int) [][]stream.Tuple {
	batches := make([][]stream.Tuple, nBatches)
	n := 0
	for b := range batches {
		ts := make([]stream.Tuple, batchSize)
		for i := range ts {
			ts[i] = stream.Tuple{fmt.Sprintf("s%d", n%97), fmt.Sprintf("d%d", (n*7)%13)}
			n++
		}
		batches[b] = ts
	}
	return batches
}

// serialState runs the batch sequence through a fresh engine serially and
// returns its marshalled state — the reference every pool size must hit.
func serialState(t *testing.T, schema *stream.Schema, seed uint64, batches [][]stream.Tuple) ([]byte, *query.Engine) {
	t.Helper()
	eng := determinismEngine(t, schema, seed)
	for _, ts := range batches {
		eng.ProcessBatch(ts)
	}
	state, err := eng.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return state, eng
}

// TestServerPoolDeterminism is the end-to-end form of the pipeline
// invariant: the engine state after ingesting over TCP through pools of
// size {1, 2, 4, 8} is bit-identical to a serial ProcessBatch run. One
// connection issues the batches sequentially, so arrival order is the send
// order.
func TestServerPoolDeterminism(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(12, 400)
	want, serial := serialState(t, schema, 11, batches)

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := startServer(t, Config{
				Schema:  schema,
				Engine:  determinismEngine(t, schema, 11),
				Workers: workers,
			})
			cl := dialClient(t, srv, schema, client.Options{Conns: 1})
			total := 0
			for _, ts := range batches {
				if err := cl.IngestBatch(ts); err != nil {
					t.Fatal(err)
				}
				total += len(ts)
			}
			waitTuples(t, cl, int64(total))
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := srv.Engine().MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Error("served engine state diverged from the serial run")
			}
			for i, st := range srv.Engine().Statements() {
				if got, want := st.Count(), serial.Statements()[i].Count(); got != want {
					t.Errorf("stmt %d: count %v, want %v", i, got, want)
				}
			}
		})
	}
}

// TestServerDrainCheckpointMatchesShadow closes a 4-worker server with
// batches still queued: the graceful drain must apply every acknowledged
// batch through the pool, and the final checkpoint file must be
// byte-identical to a capture of an uncrashed serial shadow engine.
func TestServerDrainCheckpointMatchesShadow(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(10, 500)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "srv.ckpt")

	srv := startServer(t, Config{
		Schema:         schema,
		Engine:         determinismEngine(t, schema, 23),
		Workers:        4,
		CheckpointPath: ckpt,
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	total := 0
	for _, ts := range batches {
		if err := cl.IngestBatch(ts); err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	// Close immediately — acknowledged batches may still sit in the ingest
	// queue; the drain must push them through the pool first.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	_, shadow := serialState(t, schema, 23, batches)
	shadowSnap, err := checkpoint.Capture(shadow, int64(total))
	if err != nil {
		t.Fatal(err)
	}
	shadowPath := filepath.Join(dir, "shadow.ckpt")
	if err := checkpoint.Write(shadowPath, shadowSnap); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(shadowPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("drained server checkpoint differs from the uncrashed shadow capture")
	}
}

// TestServerKillRecoverThroughPool crashes a 4-worker server mid-stream and
// recovers from its last periodic checkpoint: restoring and replaying the
// remaining tuples serially must land on the exact serial end state. This
// pins two things — periodic captures fence the pool (the checkpoint is a
// clean batch boundary, never a torn mid-batch state), and the recovered
// offset is trustworthy for replay.
func TestServerKillRecoverThroughPool(t *testing.T) {
	schema := testSchema(t)
	const batchSize = 500
	batches := determinismBatches(5, batchSize) // checkpoints at 1000 and 2000
	want, _ := serialState(t, schema, 31, batches)
	ckpt := filepath.Join(t.TempDir(), "srv.ckpt")

	srv := startServer(t, Config{
		Schema:          schema,
		Engine:          determinismEngine(t, schema, 31),
		Workers:         4,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1000,
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	for _, ts := range batches {
		if err := cl.IngestBatch(ts); err != nil {
			t.Fatal(err)
		}
	}
	waitTuples(t, cl, int64(len(batches)*batchSize))
	srv.Kill()

	snap, err := checkpoint.Read(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != 2000 {
		t.Fatalf("surviving checkpoint offset %d, want 2000 (not batch-aligned?)", snap.Offset)
	}
	// No windowed statements, so no backend resolver is needed.
	restored, err := checkpoint.Restore(snap, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replay everything past the checkpoint offset, as a producer would.
	// Batches are fixed-size and checkpoints batch-aligned, so replay starts
	// at a whole batch.
	for b := int(snap.Offset) / batchSize; b < len(batches); b++ {
		restored.ProcessBatch(batches[b])
	}
	got, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("recover-and-replay state diverged from the serial run")
	}
}

// TestServerBlockOnFullOrdering pins the BlockOnFull contract: with a
// 1-deep queue and a throttled dispatcher, a deeply pipelined producer is
// never busy-refused — the connection reader stalls for queue room instead
// — so per-connection order survives and the engine state stays
// bit-identical to a serial run. (Without BlockOnFull this setup refuses
// batches: acks confirm enqueueing, so the queue fills with already-acked
// batches while the producer keeps pipelining.)
func TestServerBlockOnFullOrdering(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(40, 25)
	want, _ := serialState(t, schema, 23, batches)

	srv := startServer(t, Config{
		Schema:      schema,
		Engine:      determinismEngine(t, schema, 23),
		QueueDepth:  1,
		Workers:     4,
		BlockOnFull: true,
		gate:        func() { time.Sleep(200 * time.Microsecond) },
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})

	// Pipeline every batch before waiting on any ack: the queue is
	// guaranteed to be full (of acked batches) for most arrivals.
	pend := make([]*client.PendingIngest, 0, len(batches))
	for _, ts := range batches {
		enc, err := client.EncodeBatch(schema, ts)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := cl.IngestAsync(enc, int64(len(ts)))
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, pi)
	}
	for _, pi := range pend {
		if err := pi.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	sn := srv.Telemetry().Snapshot()
	if sn.BatchesRejected != 0 {
		t.Fatalf("%d batches busy-refused under BlockOnFull", sn.BatchesRejected)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("engine state diverged from the serial run under blocking backpressure")
	}
}
