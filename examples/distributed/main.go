// Distributed runs the sensor-network aggregation setting of §2 over a real
// network: eight leaf nodes are impserved instances on loopback TCP, each
// observing a shard of the global traffic fed to it through the IngestBatch
// RPC. When a leaf's stream ends, the leaf serializes its sketch and ships
// it up a two-level aggregation tree — two relay servers, then a root, all
// separate TCP servers receiving the state through SnapshotMerge. The root
// answers the global implication query through the Query RPC without any
// node ever holding the stream; the bandwidth spent upstream is the
// serialized sketch size instead of the raw tuples.
//
// Constrained nodes also die. One leaf checkpoints its engine to local
// storage as it ingests and is kill()ed mid-stream — connections cut,
// queued batches lost, no final checkpoint. Its producer recovers it the
// way DESIGN.md §8 prescribes: restore the last checkpoint into a fresh
// server and replay the shard from the recorded offset. The recovered
// leaf's sketch is bit-identical to an uncrashed shadow's, and therefore so
// is the root's merged count: the aggregation tree cannot tell there was
// ever a failure.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"implicate"
	"implicate/internal/gen"
	"implicate/internal/stream"
)

const (
	leaves        = 8
	tuplesPerLeaf = 150_000
	total         = leaves * tuplesPerLeaf

	crashLeaf = 5             // the leaf that dies
	crashAt   = total * 3 / 5 // global tuple index of the crash
	ckptEvery = 20_000        // leaf-applied tuples between checkpoints
	batchSize = 1_000         // tuples per IngestBatch RPC
)

var genConfig = gen.NetTrafficConfig{
	Seed: 17, Sources: 30_000, Destinations: 8_000,
	FlashSources: 2_000, FlashTargets: 1, FlashAfter: 400_000,
}

const sql = `SELECT COUNT(DISTINCT Source) FROM traffic
	WHERE Source IMPLIES Destination
	WITH SUPPORT >= 12, MULTIPLICITY <= 2, CONFIDENCE >= 0.9 TOP 1`

// leafBackend builds merge-compatible sketches: identical options on every
// node, explicit seed so a recovered node grows exactly like an uncrashed
// one and every sketch in the tree can merge with every other.
func leafBackend(cond implicate.Conditions) (implicate.Estimator, error) {
	return implicate.NewSketch(cond, implicate.Options{Seed: 99})
}

func newNode(schema *implicate.Schema) *implicate.Engine {
	eng := implicate.NewEngine(schema)
	if _, err := eng.RegisterSQL(sql, leafBackend); err != nil {
		log.Fatal(err)
	}
	return eng
}

func nodeSketch(eng *implicate.Engine) *implicate.Sketch {
	return eng.Statements()[0].Estimator().(*implicate.Sketch)
}

// node is one impserved instance plus the feeder's client to it.
type node struct {
	srv *implicate.Server
	cl  *implicate.Client
}

// startNode serves eng on a fresh loopback port and dials it.
func startNode(schema *implicate.Schema, eng *implicate.Engine, ckptPath string) *node {
	srv, err := implicate.Serve(implicate.ServerConfig{
		Addr:            "127.0.0.1:0",
		Schema:          schema,
		Engine:          eng,
		CheckpointPath:  ckptPath,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl, err := implicate.Dial(srv.Addr(), schema, implicate.ClientOptions{BusyRetries: -1})
	if err != nil {
		log.Fatal(err)
	}
	return &node{srv: srv, cl: cl}
}

// shipSketch plays the upstream hop of the §2 tree: dial the parent and
// merge the marshalled sketch into its statement 0. Returns the bytes sent.
func shipSketch(addr string, eng *implicate.Engine) int64 {
	blob, err := nodeSketch(eng).MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	cl, err := implicate.Dial(addr, nil, implicate.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SnapshotMerge(0, blob); err != nil {
		log.Fatal(err)
	}
	return int64(len(blob))
}

func main() {
	// Global question: how many sources talk to a single destination at
	// least 90% of the time? (Sources are spread across leaves, so no leaf
	// can answer alone.)
	cond := implicate.Conditions{
		MaxMultiplicity:  2,
		MinSupport:       12,
		TopC:             1,
		MinTopConfidence: 0.9,
	}

	// Ground truth across the union of all leaf streams.
	truth, err := implicate.NewExact(cond)
	if err != nil {
		log.Fatal(err)
	}

	g := gen.NewNetTraffic(genConfig)
	schema := gen.NetTrafficSchema()
	src := schema.MustProj("Source")
	dst := schema.MustProj("Destination")

	ckptDir, err := os.MkdirTemp("", "implicate-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckptPath := filepath.Join(ckptDir, "leaf5.ckpt")

	// Eight leaf servers on loopback; only the crash victim checkpoints.
	nodes := make([]*node, leaves)
	for i := range nodes {
		path := ""
		if i == crashLeaf {
			path = ckptPath
		}
		nodes[i] = startNode(schema, newNode(schema), path)
	}
	// The shadow is what the crashing leaf would have been had it lived —
	// the yardstick for "recovery loses nothing". It runs in-process.
	shadow := newNode(schema)

	// Feed the shards. Packets of one flow hash to any leaf (think ECMP), so
	// no leaf can answer the global question alone. The victim's producer
	// keeps its shard around — it is the replay source recovery depends on.
	batches := make([][]stream.Tuple, leaves)
	var shard []stream.Tuple
	var rawBytes int64
	victimDown := false
	flush := func(leaf int) {
		if len(batches[leaf]) == 0 {
			return
		}
		if err := nodes[leaf].cl.IngestBatch(batches[leaf]); err != nil {
			log.Fatal(err)
		}
		batches[leaf] = batches[leaf][:0]
	}
	for i := int64(0); i < total; i++ {
		t, err := g.Next()
		if err != nil {
			log.Fatal(err)
		}
		a, b := src.Key(t), dst.Key(t)
		truth.Add(a, b)
		rawBytes += int64(len(a) + len(b))

		leaf := int(i % leaves)
		tup := append(stream.Tuple(nil), t...) // batches outlive the generator's buffer
		if leaf == crashLeaf {
			shadow.Process(tup)
			shard = append(shard, tup)
			if victimDown {
				continue // node is down; these tuples reach it on replay
			}
		}
		batches[leaf] = append(batches[leaf], tup)
		if len(batches[leaf]) >= batchSize {
			flush(leaf)
		}

		if i == crashAt {
			// The node dies abruptly: connections cut, the ingest queue's
			// acknowledged batches lost, no final checkpoint. Only the
			// periodic checkpoint file survives.
			nodes[crashLeaf].cl.Close()
			nodes[crashLeaf].srv.Kill()
			batches[crashLeaf] = batches[crashLeaf][:0]
			victimDown = true
		}
	}
	for leaf := range nodes {
		if leaf != crashLeaf {
			flush(leaf)
		}
	}

	// Recovery: restore the engine from the last checkpoint (queries and
	// sketch state included; no WINDOW clause, so no resolver needed), serve
	// it on a fresh port, and replay the shard from the recorded offset —
	// through the same IngestBatch RPC the live feed used.
	snap, err := implicate.ReadCheckpoint(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	recovered, err := implicate.RestoreCheckpoint(snap, schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	nodes[crashLeaf] = startNode(schema, recovered, ckptPath)
	var replayed int64
	for off := snap.Offset; off < int64(len(shard)); off += batchSize {
		end := off + batchSize
		if end > int64(len(shard)) {
			end = int64(len(shard))
		}
		if err := nodes[crashLeaf].cl.IngestBatch(shard[off:end]); err != nil {
			log.Fatal(err)
		}
		replayed += end - off
	}

	// The leaves' streams are done: drain every server gracefully. After
	// Close, each engine is the local node's to serialize and ship.
	var ingestStats []implicate.ServerStats
	for _, n := range nodes {
		n.cl.Close()
		if err := n.srv.Close(); err != nil {
			log.Fatal(err)
		}
		ingestStats = append(ingestStats, n.srv.Telemetry().Snapshot())
	}

	// The recovered node must be indistinguishable from the shadow — not
	// merely close: bit-identical serialized state.
	recBlob, err := nodeSketch(nodes[crashLeaf].srv.Engine()).MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	shadowBlob, err := nodeSketch(shadow).MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(recBlob, shadowBlob) {
		log.Fatalf("recovered leaf diverged from the uncrashed shadow (%d vs %d bytes)",
			len(recBlob), len(shadowBlob))
	}

	// The two-level aggregation tree, every hop a real TCP SnapshotMerge:
	// leaves 0-3 ship to relay A, 4-7 to relay B, the relays to the root.
	relayA := startNode(schema, newNode(schema), "")
	relayB := startNode(schema, newNode(schema), "")
	root := startNode(schema, newNode(schema), "")
	var shipped int64
	for i, n := range nodes {
		relay := relayA
		if i >= leaves/2 {
			relay = relayB
		}
		shipped += shipSketch(relay.srv.Addr(), n.srv.Engine())
	}
	for _, relay := range []*node{relayA, relayB} {
		relay.cl.Close()
		if err := relay.srv.Close(); err != nil {
			log.Fatal(err)
		}
		shipped += shipSketch(root.srv.Addr(), relay.srv.Engine())
	}

	// The global answer comes off the root through the Query RPC.
	res, err := root.cl.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	rootStats, err := root.cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	root.cl.Close()
	if err := root.srv.Close(); err != nil {
		log.Fatal(err)
	}

	// An uncrashed baseline tree, merged in-process in the same order from
	// the same serialized states (shadow standing in for the victim), must
	// give the bit-identical count — the crash is invisible at the root.
	baseline := func(members []*implicate.Engine) *implicate.Engine {
		agg := newNode(schema)
		for _, m := range members {
			blob, err := nodeSketch(m).MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			restored, err := implicate.UnmarshalSketch(blob)
			if err != nil {
				log.Fatal(err)
			}
			if err := nodeSketch(agg).Merge(restored); err != nil {
				log.Fatal(err)
			}
		}
		return agg
	}
	members := make([]*implicate.Engine, leaves)
	for i, n := range nodes {
		members[i] = n.srv.Engine()
	}
	members[crashLeaf] = shadow
	baseRoot := baseline([]*implicate.Engine{
		baseline(members[:leaves/2]), baseline(members[leaves/2:]),
	})
	if want := nodeSketch(baseRoot).ImplicationCount(); math.Float64bits(res.Count) != math.Float64bits(want) {
		log.Fatalf("root count %v differs from the uncrashed baseline %v", res.Count, want)
	}

	var leafBatches, leafRejected int64
	for _, sn := range ingestStats {
		leafBatches += sn.Batches
		leafRejected += sn.BatchesRejected
	}
	rootSketch := nodeSketch(root.srv.Engine())
	est := rootSketch.ImplicationCount()
	lo, hi := rootSketch.ImplicationCountInterval(2)
	exact := truth.ImplicationCount()
	fmt.Printf("distributed: %d leaf servers × %d tuples over loopback TCP, two-level merge tree\n", leaves, tuplesPerLeaf)
	fmt.Printf("  ingest: %d batches acknowledged, %d backpressure retries\n", leafBatches, leafRejected)
	fmt.Printf("  leaf %d killed at global tuple %d; recovered from checkpoint offset %d, replayed %d tuples\n",
		crashLeaf, crashAt, snap.Offset, replayed)
	fmt.Printf("  recovered state vs uncrashed shadow: bit-identical (%d bytes)\n", len(recBlob))
	fmt.Printf("  root merges received:             %d\n", rootStats.Merges)
	fmt.Printf("  root count vs uncrashed baseline: bit-identical (%.0f)\n", res.Count)
	fmt.Printf("  exact single-destination sources: %.0f\n", exact)
	fmt.Printf("  merged-sketch estimate:           %.0f  (95%% interval [%.0f, %.0f])\n", est, lo, hi)
	fmt.Printf("  relative error:                   %.1f%%\n", 100*abs(est-exact)/exact)
	fmt.Printf("  bytes shipped upstream:           %d (raw stream would be %d — %.0fx saving)\n",
		shipped, rawBytes, float64(rawBytes)/float64(shipped))
	fmt.Printf("  root memory:                      %d counter entries\n", rootSketch.MemEntries())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
