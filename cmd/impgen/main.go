// Command impgen generates the synthetic datasets of the paper's
// evaluation as tab-separated stream files.
//
// Usage:
//
//	impgen -kind nettraffic -n 100000 -out traffic.tsv
//	impgen -kind olap -n 1000000 -out olap.tsv
//	impgen -kind datasetone -card 1000 -count 500 -c 2 -out d1.tsv
package main

import (
	"io"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("impgen: ")

	cfg, rest, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if len(rest) != 0 {
		log.Fatalf("unexpected arguments: %v", rest)
	}
	var w io.Writer = os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := run(cfg, w, os.Stderr); err != nil {
		log.Fatal(err)
	}
}
