// Package gen builds the synthetic workloads of the paper's evaluation:
// Dataset One (§6.1, Figures 4–6), a surrogate for the proprietary
// eight-dimensional OLAP stream of §6.2 (Tables 3–4, Figure 7), and a
// network-traffic stream for the motivating examples of §1–2.
package gen

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"implicate/internal/imps"
)

// Pair is one generated tuple projected onto its A- and B-itemset
// identifiers.
type Pair struct {
	A, B uint64
}

// Key encodes an itemset identifier as a compact string key for estimators
// that index by string.
func Key(id uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], id)
	return string(buf[:])
}

// DatasetOneConfig parametrizes the §6.1 generator.
type DatasetOneConfig struct {
	// CardA is |A|, the number of distinct A-itemsets.
	CardA int
	// Count is S, the imposed implication count (itemsets built to satisfy
	// the conditions).
	Count int
	// C is the one-to-c implication width; the paper uses 1, 2 and 4.
	C int
	// Support is the per-combination tuple repetition (the paper uses 50;
	// imposed implications end up with support 50·n_b + 4 and
	// top-confidence 50·n_b/(50·n_b+4) ≥ 92.6%).
	Support int
	// Seed drives all random choices; equal configs generate equal streams.
	Seed int64
}

func (c DatasetOneConfig) withDefaults() DatasetOneConfig {
	if c.Support == 0 {
		c.Support = 50
	}
	if c.C == 0 {
		c.C = 1
	}
	return c
}

// Validate reports whether the configuration is generable.
func (c DatasetOneConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.CardA < 3:
		return fmt.Errorf("gen: CardA %d too small", c.CardA)
	case c.Count < 1 || c.Count > c.CardA:
		return fmt.Errorf("gen: Count %d out of range [1,%d]", c.Count, c.CardA)
	case c.C < 1:
		return fmt.Errorf("gen: C %d must be >= 1", c.C)
	case c.Support < 20:
		return fmt.Errorf("gen: Support %d too small for the noise construction", c.Support)
	}
	return nil
}

// DatasetOne is a generated §6.1 stream together with its ground truth.
type DatasetOne struct {
	// Pairs is the shuffled tuple stream projected to (A, B) identifiers.
	Pairs []Pair
	// Conditions are the implication conditions the experiment evaluates
	// under (K=c+4, τ=Support, c, ψ=0.90; see DESIGN.md for why K is c+4
	// rather than the paper's nominally stated c).
	Conditions imps.Conditions
	// Count is the imposed ground-truth implication count (= Config.Count).
	Count int
	// NonCount is the imposed ground-truth non-implication count.
	NonCount int
	// Supported is the imposed F0^sup ground truth.
	Supported int
}

// NewDatasetOne generates the §6.1 synthetic stream:
//
//   - Count implicating itemsets: n_b ~ U[1,c] partners with Support tuples
//     per combination, plus 4 single-tuple noise partners, for a
//     top-confidence of Support·n_b/(Support·n_b+4) ≈ 92.6% ≥ ψ = 90% and a
//     multiplicity of n_b+4 ≤ K.
//   - (CardA−Count)/3 top-confidence violators: one partner with Support
//     tuples plus 8 single-tuple partners → top-confidence ≈ 86% < ψ.
//   - (CardA−Count)/3 multiplicity violators: u ~ U[c+1, c+10] partners
//     sharing Support tuples round-robin → multiplicity u or top-confidence
//     c/u fails.
//   - (CardA−Count)/3 support violators: one partner, Support−10 tuples.
//
// The output is shuffled; per §6.1 the algorithms must be order-insensitive.
func NewDatasetOne(cfg DatasetOneConfig) (*DatasetOne, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sup := cfg.Support

	perNoise := (cfg.CardA - cfg.Count) / 3
	d := &DatasetOne{
		Conditions: imps.Conditions{
			MaxMultiplicity:  cfg.C + 4,
			MinSupport:       int64(sup),
			TopC:             cfg.C,
			MinTopConfidence: 0.90,
		},
		Count:     cfg.Count,
		NonCount:  2 * perNoise,
		Supported: cfg.Count + 2*perNoise,
	}

	var nextA, nextB uint64
	newA := func() uint64 { nextA++; return nextA }
	newB := func() uint64 { nextB++; return nextB }

	// Step 1: implicating itemsets.
	for i := 0; i < cfg.Count; i++ {
		a := newA()
		nb := 1 + rng.Intn(cfg.C)
		for j := 0; j < nb; j++ {
			b := newB()
			for k := 0; k < sup; k++ {
				d.Pairs = append(d.Pairs, Pair{a, b})
			}
		}
		for j := 0; j < 4; j++ {
			d.Pairs = append(d.Pairs, Pair{a, newB()})
		}
	}

	// Step 2: top-confidence violators (supported, within multiplicity).
	for i := 0; i < perNoise; i++ {
		a := newA()
		b := newB()
		for k := 0; k < sup; k++ {
			d.Pairs = append(d.Pairs, Pair{a, b})
		}
		for j := 0; j < 8; j++ {
			d.Pairs = append(d.Pairs, Pair{a, newB()})
		}
	}

	// Step 3: multiplicity violators.
	for i := 0; i < perNoise; i++ {
		a := newA()
		u := cfg.C + 1 + rng.Intn(10)
		bs := make([]uint64, u)
		for j := range bs {
			bs[j] = newB()
		}
		for k := 0; k < sup; k++ {
			d.Pairs = append(d.Pairs, Pair{a, bs[k%u]})
		}
	}

	// Step 4: support violators.
	for i := 0; i < perNoise; i++ {
		a := newA()
		b := newB()
		for k := 0; k < sup-10; k++ {
			d.Pairs = append(d.Pairs, Pair{a, b})
		}
	}

	rng.Shuffle(len(d.Pairs), func(i, j int) { d.Pairs[i], d.Pairs[j] = d.Pairs[j], d.Pairs[i] })
	return d, nil
}

// MustDatasetOne is NewDatasetOne panicking on error.
func MustDatasetOne(cfg DatasetOneConfig) *DatasetOne {
	d, err := NewDatasetOne(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Feed streams every pair into each estimator, in order.
func (d *DatasetOne) Feed(ests ...imps.Estimator) {
	for _, p := range d.Pairs {
		for _, e := range ests {
			e.Add(Key(p.A), Key(p.B))
		}
	}
}
