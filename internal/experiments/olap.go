package experiments

import (
	"fmt"
	"io"

	"implicate/internal/core"
	"implicate/internal/dsample"
	"implicate/internal/exact"
	"implicate/internal/gen"
	"implicate/internal/imps"
	"implicate/internal/lossy"
	"implicate/internal/metrics"
)

// Workload selects one of the two §6.2 query workloads over the OLAP
// stream.
type Workload string

const (
	// WorkloadA is the conditional implication (A,B) → (E,G): large
	// compound cardinality, large counts.
	WorkloadA Workload = "A"
	// WorkloadB is the unconditional implication E → B: moderate
	// cardinalities, small counts.
	WorkloadB Workload = "B"
)

// OLAPConfig parametrizes the Figure 7 / Table 4 reproduction.
type OLAPConfig struct {
	Workload Workload
	// Tau is the absolute minimum support: 5 for Figure 7(a), 50 for 7(b).
	Tau int64
	// Psis are the minimum top-1 confidence variants; the paper plots 0.6
	// and 0.8.
	Psis []float64
	// Checkpoints are the stream positions at which errors are recorded;
	// the paper uses ≈{134.6k, 672.8k, 1.34M, 2.69M, 4.04M, 5.38M}.
	Checkpoints []int64
	Seed        int64
	// Options configure the NIPS sketches (Table 5: 64 bitmaps, fringe 4).
	Options core.Options
	// DSSize/DSBound configure Distinct Sampling (Table 5: 1920 / 39).
	DSSize, DSBound int
	// ILCEps is the ILC approximation parameter (Table 5: 0.01); the
	// relative support is pinned to its minimum legal value ε, the closest
	// ILC can come to honouring an absolute support (§5.1.1).
	ILCEps float64
}

func (c OLAPConfig) withDefaults() OLAPConfig {
	if c.Workload == "" {
		c.Workload = WorkloadA
	}
	if c.Tau == 0 {
		c.Tau = 5
	}
	if len(c.Psis) == 0 {
		c.Psis = []float64{0.6, 0.8}
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = PaperCheckpoints()
	}
	if c.DSSize == 0 {
		c.DSSize = 1920
	}
	if c.DSBound == 0 {
		c.DSBound = 39
	}
	if c.ILCEps == 0 {
		c.ILCEps = 0.01
	}
	return c
}

// PaperCheckpoints returns the six stream positions of Table 4 / Figure 7.
func PaperCheckpoints() []int64 {
	return []int64{134576, 672771, 1344591, 2690181, 4035475, 5381203}
}

// OLAPRow is one checkpoint of one ψ series.
type OLAPRow struct {
	Tuples int64
	Psi    float64
	// Exact is the ground-truth implication count at the checkpoint.
	Exact float64
	// Relative errors of the three competitors.
	NIPSErr, DSErr, ILCErr float64
	// Live memory entries of the three competitors at the checkpoint.
	NIPSMem, DSMem, ILCMem int
}

// olapLane is one ψ variant's set of concurrent estimators.
type olapLane struct {
	psi  float64
	nips *core.Sketch
	ds   *dsample.Sketch
	ilc  *lossy.ILC
	ex   *exact.Counter
}

// RunOLAP streams the surrogate once, feeding every ψ lane's estimators,
// and records relative errors at each checkpoint — the Figure 7 series.
func RunOLAP(cfg OLAPConfig) ([]OLAPRow, error) {
	cfg = cfg.withDefaults()
	var lanes []*olapLane
	for i, psi := range cfg.Psis {
		cond := imps.Conditions{
			MaxMultiplicity:  2, // Table 5: K=2
			MinSupport:       cfg.Tau,
			TopC:             1,
			MinTopConfidence: psi,
		}
		opts := cfg.Options
		opts.Seed = uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(i+1)
		nips, err := core.NewSketch(cond, opts)
		if err != nil {
			return nil, err
		}
		ds, err := dsample.New(cond, cfg.DSSize, cfg.DSBound, opts.Seed+7)
		if err != nil {
			return nil, err
		}
		ilc, err := lossy.NewILC(cond, cfg.ILCEps, cfg.ILCEps)
		if err != nil {
			return nil, err
		}
		ex, err := exact.NewCounter(cond)
		if err != nil {
			return nil, err
		}
		lanes = append(lanes, &olapLane{psi: psi, nips: nips, ds: ds, ilc: ilc, ex: ex})
	}

	o := gen.NewOLAP(gen.OLAPConfig{Seed: cfg.Seed})
	var rows []OLAPRow
	ci := 0
	last := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	for o.Tuples() < last {
		ids := o.NextIDs()
		var a, b string
		if cfg.Workload == WorkloadA {
			a, b = gen.PairKey(ids[0], ids[1]), gen.PairKey(ids[4], ids[6])
		} else {
			a, b = gen.SingleKey(ids[4]), gen.SingleKey(ids[1])
		}
		for _, l := range lanes {
			l.nips.Add(a, b)
			l.ds.Add(a, b)
			l.ilc.Add(a, b)
			l.ex.Add(a, b)
		}
		if o.Tuples() == cfg.Checkpoints[ci] {
			for _, l := range lanes {
				truth := l.ex.ImplicationCount()
				rows = append(rows, OLAPRow{
					Tuples:  o.Tuples(),
					Psi:     l.psi,
					Exact:   truth,
					NIPSErr: metrics.RelErr(truth, l.nips.ImplicationCount()),
					DSErr:   metrics.RelErr(truth, l.ds.ImplicationCount()),
					ILCErr:  metrics.RelErr(truth, l.ilc.ImplicationCount()),
					NIPSMem: l.nips.MemEntries(),
					DSMem:   l.ds.MemEntries(),
					ILCMem:  l.ilc.MemEntries(),
				})
			}
			ci++
		}
	}
	return rows, nil
}

// PrintOLAP renders rows in the layout of Figure 7: relative error versus
// stream size per algorithm and ψ.
func PrintOLAP(w io.Writer, cfg OLAPConfig, rows []OLAPRow) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Figure 7 — Workload %s, τ=%d (relative error %% vs stream size)\n", cfg.Workload, cfg.Tau)
	fmt.Fprintf(w, "  %10s  %4s  %12s  %12s  %12s  %12s   %s\n",
		"Tuples", "ψ1", "Exact S", "NIPS/CI", "DS", "ILC", "mem entries (NIPS/DS/ILC)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d  %4.2f  %12.0f  %11.1f%%  %11.1f%%  %11.1f%%   %d/%d/%d\n",
			r.Tuples, r.Psi, r.Exact, 100*r.NIPSErr, 100*r.DSErr, 100*r.ILCErr,
			r.NIPSMem, r.DSMem, r.ILCMem)
	}
}

// Table4Row is one checkpoint of the Table 4 ground-truth counts.
type Table4Row struct {
	Tuples    int64
	WorkloadA float64
	WorkloadB float64
}

// RunTable4 replays the surrogate through exact counters for both §6.2
// workloads at τ=5, ψ1=0.60 (the conditions Table 4 quotes) and reports
// the counts at each checkpoint.
func RunTable4(checkpoints []int64, seed int64) ([]Table4Row, error) {
	if len(checkpoints) == 0 {
		checkpoints = PaperCheckpoints()
	}
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 5, TopC: 1, MinTopConfidence: 0.60}
	exA, err := exact.NewCounter(cond)
	if err != nil {
		return nil, err
	}
	exB, err := exact.NewCounter(cond)
	if err != nil {
		return nil, err
	}
	o := gen.NewOLAP(gen.OLAPConfig{Seed: seed})
	var rows []Table4Row
	ci := 0
	for o.Tuples() < checkpoints[len(checkpoints)-1] {
		ids := o.NextIDs()
		exA.Add(gen.PairKey(ids[0], ids[1]), gen.PairKey(ids[4], ids[6]))
		exB.Add(gen.SingleKey(ids[4]), gen.SingleKey(ids[1]))
		if o.Tuples() == checkpoints[ci] {
			rows = append(rows, Table4Row{
				Tuples:    o.Tuples(),
				WorkloadA: exA.ImplicationCount(),
				WorkloadB: exB.ImplicationCount(),
			})
			ci++
		}
	}
	return rows, nil
}

// PrintTable4 renders the Table 4 counts next to the paper's.
func PrintTable4(w io.Writer, rows []Table4Row) {
	paperA := []float64{608, 12787, 34816, 84190, 132161, 187584}
	paperB := []float64{50, 125, 152, 165, 182, 188}
	fmt.Fprintln(w, "Table 4 — Implication counts w.r.t. tuples (surrogate vs paper)")
	fmt.Fprintf(w, "  %10s  %14s %12s  %14s %12s\n", "Tuples", "A,B→E,G", "(paper)", "E→B", "(paper)")
	for i, r := range rows {
		pa, pb := "-", "-"
		if i < len(paperA) {
			pa = fmt.Sprintf("%.0f", paperA[i])
			pb = fmt.Sprintf("%.0f", paperB[i])
		}
		fmt.Fprintf(w, "  %10d  %14.0f %12s  %14.0f %12s\n", r.Tuples, r.WorkloadA, pa, r.WorkloadB, pb)
	}
}
