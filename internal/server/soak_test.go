package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"implicate/internal/client"
	"implicate/internal/stream"
)

// TestSoakLoopbackIngest drives >= 1M tuples through IngestBatch over
// loopback TCP from concurrent producers against a deliberately shallow
// ingest queue, so real backpressure happens. The accounting contract under
// test: every batch is either acknowledged (and then applied before a
// graceful Close returns) or refused with an explicit TBusy the client
// retries — so with unlimited busy retries, zero tuples go missing and the
// rejection count is visible in telemetry, not silent.
//
// Run with -race to exercise the server's engine serialization; the test is
// part of the default suite (ISSUE: soak under -race).
func TestSoakLoopbackIngest(t *testing.T) {
	const (
		producers  = 4
		batches    = 250 // per producer
		batchSize  = 1000
		total      = producers * batches * batchSize // 1_000_000
		distinctAs = 5000
	)

	schema := testSchema(t)
	// Exact counting is order-independent, so the shadow answer below is
	// exact no matter how producer batches interleave.
	srv := startServer(t, Config{
		Schema:     schema,
		Engine:     testEngine(t, schema, exactBackend()),
		QueueDepth: 2,
		Workers:    4,
		// Slow the dispatcher so producers outrun the queue and the
		// backpressure path actually fires. Batch application happens in the
		// pool, off the dispatch loop, so the gate must be long enough to
		// dominate the producers' loopback round trip.
		gate:       func() { time.Sleep(500 * time.Microsecond) },
		RetryAfter: time.Millisecond,
	})

	// Pre-encode each producer's batches once; producers then hammer
	// IngestEncoded so the loop measures the server, not the encoder.
	shadow := testEngine(t, schema, exactBackend())
	payloads := make([][][]byte, producers)
	for p := 0; p < producers; p++ {
		payloads[p] = make([][]byte, batches)
		for b := 0; b < batches; b++ {
			tuples := make([]stream.Tuple, batchSize)
			for i := range tuples {
				n := (p*batches+b)*batchSize + i
				tuples[i] = stream.Tuple{fmt.Sprintf("s%d", n%distinctAs), fmt.Sprintf("d%d", (n%distinctAs)%13)}
			}
			shadow.ProcessBatch(tuples)
			enc, err := client.EncodeBatch(schema, tuples)
			if err != nil {
				t.Fatal(err)
			}
			payloads[p][b] = enc
		}
	}

	var sent atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr(), schema, client.Options{
				Conns:       1,
				BusyRetries: -1, // absorb every backpressure reply
				RetryBase:   200 * time.Microsecond,
				RetryCap:    5 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for b := 0; b < batches; b++ {
				if err := cl.IngestEncoded(payloads[p][b], batchSize); err != nil {
					errs <- fmt.Errorf("producer %d batch %d: %w", p, b, err)
					return
				}
				sent.Add(batchSize)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sent.Load() != total {
		t.Fatalf("producers acked %d of %d tuples", sent.Load(), total)
	}

	// Graceful close drains every acknowledged batch into the engine.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	sn := srv.Telemetry().Snapshot()
	if sn.TuplesIngested != total {
		t.Fatalf("engine applied %d of %d acked tuples — a drop went unreported", sn.TuplesIngested, total)
	}
	if got := srv.Engine().Tuples(); got != total {
		t.Fatalf("engine tuple count %d, want %d", got, total)
	}
	if sn.Batches != producers*batches {
		t.Fatalf("accepted-batch count %d, want %d", sn.Batches, producers*batches)
	}
	if sn.BatchesRejected == 0 {
		t.Fatal("soak produced no backpressure; the test did not exercise the rejection path")
	}
	if sn.QueueHighWater < 1 {
		t.Fatalf("queue high water %d", sn.QueueHighWater)
	}
	if got, want := srv.Engine().Statements()[0].Count(), shadow.Statements()[0].Count(); got != want {
		t.Fatalf("served count %v, shadow count %v", got, want)
	}
	t.Logf("soak: %d tuples, %d batches accepted, %d busy replies retried, queue high-water %d",
		sn.TuplesIngested, sn.Batches, sn.BatchesRejected, sn.QueueHighWater)
}
