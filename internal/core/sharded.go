package core

import (
	"fmt"
	"iter"
	"math"
	"runtime"
	"sync"

	"implicate/internal/fm"
	"implicate/internal/imps"
	"implicate/internal/xhash"
)

// ShardedSketch is a NIPS/CI sketch partitioned for parallel ingestion.
//
// The stochastic-averaging router already assigns every tuple to exactly one
// of the m bitmaps by the low bits of its A-itemset hash, so the bitmaps can
// be split across n shards with zero cross-shard coordination on the hot
// path: shard s owns the bitmaps whose index is congruent to s modulo n, and
// a tuple's shard is a mask of its hash. Each shard guards its sub-sketch
// with its own mutex; concurrent producers contend only when their tuples
// hash to the same shard, and the batched Add paths take each shard lock
// once per batch rather than once per tuple.
//
// A ShardedSketch is numerically identical to a single Sketch built with the
// same conditions, options and seed: routing, ranks and per-bitmap cell
// evolution are byte-for-byte the same computation, merely executed on the
// shard that owns the bitmap. Any two ingestion schedules that deliver the
// same per-bitmap tuple order produce bit-identical estimates (and a single
// producer always does, whatever the shard count). Estimator reads take
// every shard lock, so they observe a serializable snapshot that includes
// every Add that returned before the read began; there is no buffering and
// nothing to flush (Flush exists as an explicit no-op barrier).
//
// All methods are safe for concurrent use.
type ShardedSketch struct {
	cond   imps.Conditions
	opts   Options
	router xhash.Router
	ahash  xhash.Hash
	bhash  xhash.Hash

	shardMask  uint64 // nShards-1: a tuple's shard is ah & shardMask
	shardShift uint   // log2(nShards): global bitmap bm lives at local index bm >> shardShift
	shards     []sketchShard
}

// sketchShard is one mutex-guarded sub-sketch. The struct is padded to a
// cache line so shard locks on adjacent array slots do not false-share.
type sketchShard struct {
	mu sync.Mutex
	sk *Sketch
	_  [48]byte
}

// NewShardedSketch returns a sharded NIPS/CI sketch with the given shard
// count. shards must be a power of two no larger than the bitmap count m;
// shards == 0 selects GOMAXPROCS rounded down to a power of two (capped at
// m). The result answers every query a same-seed Sketch would, bit for bit.
func NewShardedSketch(cond imps.Conditions, opts Options, shards int) (*ShardedSketch, error) {
	opts = opts.withDefaults()
	if shards == 0 {
		shards = floorPow2(runtime.GOMAXPROCS(0))
		if shards > opts.Bitmaps {
			shards = opts.Bitmaps
		}
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("core: shard count %d must be a power of two", shards)
	}
	if shards > opts.Bitmaps {
		return nil, fmt.Errorf("core: shard count %d exceeds bitmap count %d", shards, opts.Bitmaps)
	}
	router, err := xhash.NewRouter(opts.Bitmaps)
	if err != nil {
		return nil, err
	}
	subOpts := opts
	subOpts.Bitmaps = opts.Bitmaps / shards
	ss := &ShardedSketch{
		cond:       cond,
		opts:       opts,
		router:     router,
		ahash:      xhash.New(opts.Seed),
		bhash:      xhash.New(xhash.Mix(opts.Seed + 0x9e3779b97f4a7c15)),
		shardMask:  uint64(shards - 1),
		shardShift: uint(log2(shards)),
		shards:     make([]sketchShard, shards),
	}
	for i := range ss.shards {
		sk, err := NewSketch(cond, subOpts)
		if err != nil {
			return nil, err
		}
		ss.shards[i].sk = sk
	}
	return ss, nil
}

func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

func log2(pow2 int) int {
	n := 0
	for 1<<n < pow2 {
		n++
	}
	return n
}

// Conditions returns the implication conditions the sketch enforces.
func (ss *ShardedSketch) Conditions() imps.Conditions { return ss.cond }

// Options returns the effective (defaulted) options; Bitmaps is the global
// bitmap count, identical to the equivalent single Sketch.
func (ss *ShardedSketch) Options() Options { return ss.opts }

// Shards returns the shard count.
func (ss *ShardedSketch) Shards() int { return len(ss.shards) }

// Add observes one tuple: a is the encoded A-itemset, b the encoded
// B-itemset.
func (ss *ShardedSketch) Add(a, b string) {
	ss.AddHashed(ss.ahash.Sum(a), ss.bhash.Sum(b))
}

// AddBytes observes a tuple whose itemsets are encoded as byte slices,
// avoiding the string conversion allocations of Add.
func (ss *ShardedSketch) AddBytes(a, b []byte) {
	ss.AddHashed(ss.ahash.SumBytes(a), ss.bhash.SumBytes(b))
}

// AddIDs observes a tuple whose itemsets are identified by integers, the
// fast path for synthetic workloads.
func (ss *ShardedSketch) AddIDs(a, b uint64) {
	ss.AddHashed(ss.ahash.SumUint64(a), ss.bhash.SumUint64(b))
}

// AddHashed observes a tuple by the 64-bit hashes of its itemsets, locking
// only the shard that owns the tuple's bitmap.
func (ss *ShardedSketch) AddHashed(ah, bh uint64) {
	bm, rank := ss.router.Route(ah)
	if rank >= Levels {
		rank = Levels - 1
	}
	sh := &ss.shards[uint64(bm)&ss.shardMask]
	sh.mu.Lock()
	sh.sk.addRouted(bm>>ss.shardShift, rank, ah, bh)
	sh.mu.Unlock()
}

// AddHashedBatch observes a batch of pre-hashed tuples, taking each shard
// lock at most once for the whole batch. This is the preferred high-volume
// ingest path: the per-tuple cost is a hash mask and Algorithm 1 itself,
// with lock traffic amortized across the batch.
func (ss *ShardedSketch) AddHashedBatch(batch []HashedPair) {
	if len(ss.shards) == 1 {
		sh := &ss.shards[0]
		sh.mu.Lock()
		sh.sk.AddHashedBatch(batch)
		sh.mu.Unlock()
		return
	}
	for si := range ss.shards {
		sh := &ss.shards[si]
		locked := false
		for i := range batch {
			if int(batch[i].AH&ss.shardMask) != si {
				continue
			}
			if !locked {
				sh.mu.Lock()
				locked = true
			}
			bm, rank := ss.router.Route(batch[i].AH)
			if rank >= Levels {
				rank = Levels - 1
			}
			sh.sk.addRouted(bm>>ss.shardShift, rank, batch[i].AH, batch[i].BH)
		}
		if locked {
			sh.mu.Unlock()
		}
	}
}

// batchChunk is the number of tuples hashed onto the stack at a time by the
// string-keyed batch path; it bounds per-call stack use at 2 KiB while
// amortizing shard lock traffic ~64×.
const batchChunk = 128

// AddBatch observes a batch of encoded itemset pairs. Keys are hashed into a
// stack-resident chunk and handed to AddHashedBatch, so the path allocates
// nothing regardless of batch size.
func (ss *ShardedSketch) AddBatch(pairs []imps.Pair) {
	var chunk [batchChunk]HashedPair
	for len(pairs) > 0 {
		n := len(pairs)
		if n > batchChunk {
			n = batchChunk
		}
		for i := 0; i < n; i++ {
			chunk[i] = HashedPair{AH: ss.ahash.Sum(pairs[i].A), BH: ss.bhash.Sum(pairs[i].B)}
		}
		ss.AddHashedBatch(chunk[:n])
		pairs = pairs[n:]
	}
}

// IngestPartition implements imps.PartitionedAdder: it maps an encoded
// A-itemset key to the ingest partition that must observe it when the
// caller splits a batch across n concurrent workers.
//
// The partition is the low bits of the A-hash — the same bits the
// stochastic-averaging router uses to pick the tuple's bitmap and this
// type uses to pick the shard — clamped so that n never exceeds the shard
// count. The clamp makes a partition exactly one shard (or a power-of-two
// group of shards), so per-partition FIFO delivery reproduces the serial
// run's per-shard add sequence verbatim: not just every bitmap's
// order-sensitive cell evolution (overflow kills, fringe push-outs) but
// also the shard's entry high-water mark, which tracks the interleaving
// across its bitmaps and is part of the marshalled state. Finer partitions
// would still give bit-identical estimates, but could interleave two
// partitions of one shard and perturb that high-water mark.
//
// The partition of a key does not depend on the worker count beyond the
// clamp: partition p under 2n splits into {p, p+n} under n's refinement,
// so any power-of-two pool size yields the same per-shard order.
func (ss *ShardedSketch) IngestPartition(a []byte, n int) int {
	if n > len(ss.shards) {
		n = len(ss.shards)
	}
	return int(ss.ahash.SumBytes(a) & uint64(n-1))
}

// IngestPartitionString implements imps.StringPartitioner; see
// IngestPartition.
func (ss *ShardedSketch) IngestPartitionString(a string, n int) int {
	if n > len(ss.shards) {
		n = len(ss.shards)
	}
	return int(ss.ahash.Sum(a) & uint64(n-1))
}

// HashPair pre-hashes one encoded itemset pair for AddHashedBatch. Producer
// goroutines can hash their tuples without any lock and hand the sketch
// ready-routed batches.
func (ss *ShardedSketch) HashPair(a, b string) HashedPair {
	return HashedPair{AH: ss.ahash.Sum(a), BH: ss.bhash.Sum(b)}
}

// HashPairKeys implements imps.HashedPartitionedAdder: the planner computes
// this sketch's own seeded hashes once and forwards them through the plan
// IR, so the ingest path never re-hashes a key.
func (ss *ShardedSketch) HashPairKeys(a, b string) (ah, bh uint64) {
	return ss.ahash.Sum(a), ss.bhash.Sum(b)
}

// IngestPartitionHashed routes a pre-hashed A key; it must agree with
// IngestPartitionString for hashes produced by HashPairKeys, which it does
// trivially — both mask the same ahash.Sum value.
func (ss *ShardedSketch) IngestPartitionHashed(ah uint64, n int) int {
	if n > len(ss.shards) {
		n = len(ss.shards)
	}
	return int(ah & uint64(n-1))
}

// AddHashedPairs ingests plan-IR pairs whose hashes came from HashPairKeys.
// It is AddHashedBatch over the embedded hashes — the keys ride along for
// exact backends and are ignored here — so bit-identity to AddBatch of the
// same pairs follows from both paths calling the same seeded hash functions.
func (ss *ShardedSketch) AddHashedPairs(pairs []imps.HashedPair) {
	if len(ss.shards) == 1 {
		sh := &ss.shards[0]
		sh.mu.Lock()
		for i := range pairs {
			bm, rank := ss.router.Route(pairs[i].AH)
			if rank >= Levels {
				rank = Levels - 1
			}
			sh.sk.addRouted(bm>>ss.shardShift, rank, pairs[i].AH, pairs[i].BH)
		}
		sh.mu.Unlock()
		return
	}
	for si := range ss.shards {
		sh := &ss.shards[si]
		locked := false
		for i := range pairs {
			if int(pairs[i].AH&ss.shardMask) != si {
				continue
			}
			if !locked {
				sh.mu.Lock()
				locked = true
			}
			bm, rank := ss.router.Route(pairs[i].AH)
			if rank >= Levels {
				rank = Levels - 1
			}
			sh.sk.addRouted(bm>>ss.shardShift, rank, pairs[i].AH, pairs[i].BH)
		}
		if locked {
			sh.mu.Unlock()
		}
	}
}

// HashIDs pre-hashes one integer-identified tuple for AddHashedBatch.
func (ss *ShardedSketch) HashIDs(a, b uint64) HashedPair {
	return HashedPair{AH: ss.ahash.SumUint64(a), BH: ss.bhash.SumUint64(b)}
}

// Flush is the read barrier for externally buffered producers: it acquires
// and releases every shard lock, so it returns only after every Add that
// started before the call has been applied. Because the Add paths are
// synchronous (no internal buffering), callers that only query through this
// type never need it — estimator reads take the same locks themselves.
func (ss *ShardedSketch) Flush() {
	ss.lockAll()
	ss.unlockAll()
}

func (ss *ShardedSketch) lockAll() {
	for i := range ss.shards {
		ss.shards[i].mu.Lock()
	}
}

func (ss *ShardedSketch) unlockAll() {
	for i := range ss.shards {
		ss.shards[i].mu.Unlock()
	}
}

// bitmaps yields every bitmap across all shards; the caller must hold every
// shard lock. Readers are pure sums over bitmaps, so the shard-major order
// (vs the single sketch's index-major order) does not affect any estimate.
func (ss *ShardedSketch) bitmaps() iter.Seq[*bitmap] {
	return func(yield func(*bitmap) bool) {
		for si := range ss.shards {
			sk := ss.shards[si].sk
			for i := range sk.bms {
				if !yield(&sk.bms[i]) {
					return
				}
			}
		}
	}
}

// ImplicationCount estimates S, the number of distinct A-itemsets implying
// B; see Sketch.ImplicationCount for the estimator.
func (ss *ShardedSketch) ImplicationCount() float64 {
	ss.lockAll()
	defer ss.unlockAll()
	return implicationCountOver(ss.bitmaps(), ss.opts.Bitmaps)
}

// ImplicationCountInterval returns an approximate confidence interval around
// ImplicationCount at z standard errors; see Sketch.ImplicationCountInterval.
func (ss *ShardedSketch) ImplicationCountInterval(z float64) (lo, hi float64) {
	ss.lockAll()
	defer ss.unlockAll()
	return implicationIntervalOver(ss.bitmaps(), ss.opts.Bitmaps, z)
}

// CIImplicationCount is Algorithm 2 (CI): S = F0^sup(A) − ~S, clamped at
// zero, computed under one consistent snapshot of all shards.
func (ss *ShardedSketch) CIImplicationCount() float64 {
	ss.lockAll()
	defer ss.unlockAll()
	d := ss.supportedDistinct() - ss.nonImplicationCount()
	if d < 0 {
		return 0
	}
	return d
}

// NonImplicationCount estimates ~S: distinct A-itemsets that met the support
// condition but violated multiplicity or top-confidence.
func (ss *ShardedSketch) NonImplicationCount() float64 {
	ss.lockAll()
	defer ss.unlockAll()
	return ss.nonImplicationCount()
}

func (ss *ShardedSketch) nonImplicationCount() float64 {
	return fm.CorrectedEstimate(meanROver(ss.bitmaps(), ss.opts.Bitmaps, (*bitmap).rNonImplication), ss.opts.Bitmaps)
}

// SupportedDistinct estimates F0^sup(A): distinct A-itemsets meeting the
// minimum-support condition.
func (ss *ShardedSketch) SupportedDistinct() float64 {
	ss.lockAll()
	defer ss.unlockAll()
	return ss.supportedDistinct()
}

func (ss *ShardedSketch) supportedDistinct() float64 {
	return fm.CorrectedEstimate(meanROver(ss.bitmaps(), ss.opts.Bitmaps, (*bitmap).rSupported), ss.opts.Bitmaps)
}

// DistinctCount estimates F0(A): all distinct A-itemsets seen, regardless of
// support.
func (ss *ShardedSketch) DistinctCount() float64 {
	ss.lockAll()
	defer ss.unlockAll()
	return ss.distinctCount()
}

func (ss *ShardedSketch) distinctCount() float64 {
	return fm.CorrectedEstimate(meanROver(ss.bitmaps(), ss.opts.Bitmaps, (*bitmap).rHashed), ss.opts.Bitmaps)
}

// AvgMultiplicity estimates the mean number of distinct B-partners over
// implicating itemsets; see Sketch.AvgMultiplicity.
func (ss *ShardedSketch) AvgMultiplicity() float64 {
	ss.lockAll()
	defer ss.unlockAll()
	return avgMultiplicityOver(ss.bitmaps(), ss.cond.MinSupport)
}

// MinEstimable returns the smallest non-implication count the bounded
// fringe can resolve, 2^−F · F0(A); see Sketch.MinEstimable.
func (ss *ShardedSketch) MinEstimable() float64 {
	if ss.opts.Unbounded {
		return 0
	}
	ss.lockAll()
	defer ss.unlockAll()
	return math.Exp2(-float64(ss.opts.FringeSize)) * ss.distinctCount()
}

// Tuples returns the number of tuples observed across all shards.
func (ss *ShardedSketch) Tuples() int64 {
	ss.lockAll()
	defer ss.unlockAll()
	var n int64
	for i := range ss.shards {
		n += ss.shards[i].sk.tuples
	}
	return n
}

// MemEntries returns the number of live counter entries across all shards —
// identical to the equivalent single sketch's footprint.
func (ss *ShardedSketch) MemEntries() int {
	ss.lockAll()
	defer ss.unlockAll()
	var n int
	for i := range ss.shards {
		n += ss.shards[i].sk.entries
	}
	return n
}

// PeakMemEntries returns the sum of the shards' high-water marks. Shards
// peak at independent moments, so this is an upper bound on (not an exact
// reproduction of) the peak a single sketch would have recorded.
func (ss *ShardedSketch) PeakMemEntries() int {
	ss.lockAll()
	defer ss.unlockAll()
	var n int
	for i := range ss.shards {
		n += ss.shards[i].sk.peak
	}
	return n
}

// Fringe returns current fringe occupancy statistics aggregated across
// shards.
func (ss *ShardedSketch) Fringe() FringeStats {
	ss.lockAll()
	defer ss.unlockAll()
	return fringeStatsOver(ss.bitmaps())
}

// Reset returns every shard to its freshly constructed state.
func (ss *ShardedSketch) Reset() {
	ss.lockAll()
	defer ss.unlockAll()
	for i := range ss.shards {
		ss.shards[i].sk.Reset()
	}
}

var _ imps.Estimator = (*ShardedSketch)(nil)
var _ imps.MultiplicityAverager = (*ShardedSketch)(nil)
var _ imps.PartitionedAdder = (*ShardedSketch)(nil)
var _ imps.HashedPartitionedAdder = (*ShardedSketch)(nil)
