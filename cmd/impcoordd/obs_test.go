package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"implicate"
)

// TestFleetObsSmoke is the end-to-end fleet observability path `make
// fleet-obs-smoke` exercises through the test binary: impcoordd with -admin
// and -trace-spans over three trace-aware leaves, producers ingesting
// through the wire front-end, then one assembled cross-node trace asserted
// over the Trace RPC (coordinator delivery roots adopting leaf-side spans)
// and a /metrics scrape asserted to carry the coordinator's per-leaf rows
// and the rolled-up leaf series.
func TestFleetObsSmoke(t *testing.T) {
	const (
		nLeaves = 3
		total   = 3000
		batch   = 200
	)
	schema := mustSchema(t, "A", "B")

	srvs := make([]*implicate.Server, nLeaves)
	var leafFlag []string
	for i := range srvs {
		eng := smokeEngine(t, schema)
		srv, err := implicate.Serve(implicate.ServerConfig{
			Addr:       "127.0.0.1:0",
			Schema:     schema,
			Engine:     eng,
			Workers:    2,
			TraceSpans: 2048,
		})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		leafFlag = append(leafFlag, fmt.Sprintf("leaf%d=%s", i, srv.Addr()))
	}
	defer func() {
		for _, srv := range srvs {
			srv.Kill()
		}
	}()

	cfg := &config{
		listen:  "127.0.0.1:0",
		admin:   "127.0.0.1:0",
		leaves:  strings.Join(leafFlag, ","),
		schema:  "A, B",
		queries: smokeSQL, parts: 64, flush: 1,
		probeEvery: 10 * time.Millisecond, probeTimeout: 250 * time.Millisecond,
		probeFails: 2, drainTimeout: 30 * time.Second,
		traceSpans: 4096,
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan coordAddrs, 1)
	stop := make(chan struct{})
	var out strings.Builder
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, ready, stop, &out) }()
	var addrs coordAddrs
	select {
	case addrs = <-ready:
	case err := <-serveErr:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not come up")
	}
	if addrs.admin == "" {
		t.Fatal("no admin address with -admin set")
	}

	cl, err := implicate.Dial(addrs.front, schema, implicate.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tuples := smokeTuples(total)
	for off := 0; off < total; off += batch {
		if err := cl.IngestBatch(tuples[off : off+batch]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := cl.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck at %d of %d tuples", res.Tuples, total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One assembled cross-node trace over the wire: coordinator delivery
	// spans as roots, and for every leaf at least one leaf-side span whose
	// trace and parent ids name a delivery — the cross-node link the traced
	// frames carried.
	spans, err := cl.FleetTrace()
	if err != nil {
		t.Fatal(err)
	}
	delivers := make(map[uint64]implicate.FleetSpan)
	nodes := make(map[string]bool)
	for _, s := range spans {
		nodes[s.Node] = true
		if s.Node == "coord" && s.Kind.String() == "deliver" {
			delivers[s.ID] = s
		}
	}
	if len(delivers) == 0 {
		t.Fatalf("no delivery spans in the fleet trace (%d spans, nodes %v)", len(spans), nodes)
	}
	adopted := make(map[string]int)
	for _, s := range spans {
		if s.Node == "coord" || s.Trace == 0 {
			continue
		}
		d, ok := delivers[s.Parent]
		if !ok || d.Trace != s.Trace {
			t.Fatalf("leaf span %s/%v not parented under a delivery: %+v", s.Node, s.Kind, s)
		}
		adopted[s.Node]++
	}
	for i := 0; i < nLeaves; i++ {
		if adopted[fmt.Sprintf("leaf%d", i)] == 0 {
			t.Errorf("leaf%d contributed no spans to the assembled trace", i)
		}
	}

	// The /metrics scrape: coordinator-side per-leaf rows and the rolled-up
	// leaf series, one row per leaf.
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addrs.admin + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	for i := 0; i < nLeaves; i++ {
		for _, series := range []string{
			fmt.Sprintf(`imps_coord_leaf_up{leaf="leaf%d"} 1`, i),
			fmt.Sprintf(`imps_coord_leaf_journal_tuples_total{leaf="leaf%d"}`, i),
			fmt.Sprintf(`imps_coord_leaf_deliveries_total{leaf="leaf%d"}`, i),
			fmt.Sprintf(`imps_leaf_tuples_ingested_total{leaf="leaf%d"}`, i),
		} {
			if !strings.Contains(metrics, series) {
				t.Errorf("/metrics missing %q", series)
			}
		}
	}
	if !strings.Contains(metrics, "imps_coord_virtual_partitions 64") {
		t.Error("/metrics missing the route-table gauge")
	}
	if !strings.Contains(metrics, "imps_tuples_ingested_total 3000") {
		t.Error("/metrics missing the coordinator's own routed-tuple counter")
	}
	if hz := get("/healthz"); !strings.HasPrefix(hz, "ok\n") || !strings.Contains(hz, "leaf leaf2 state=up") {
		t.Errorf("/healthz = %q", hz)
	}
	if fleet := get("/fleet"); !strings.Contains(fleet, `"name": "leaf0"`) {
		t.Errorf("/fleet missing leaf rows: %s", fleet)
	}

	close(stop)
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}
