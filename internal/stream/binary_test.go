package stream

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	schema := MustSchema("Source", "Destination", "Service")
	tuples := []Tuple{
		{"S1", "D2", "WWW"},
		{"", "D1", "FTP"}, // empty values are legal
		{"S3 with spaces", "D3\twith\ttabs", "P2P\nnewline"}, // bytes the text codec forbids
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, schema)
	for _, tup := range tuples {
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Schema().Names(), schema.Names()) {
		t.Fatalf("schema = %v", r.Schema().Names())
	}
	var got []Tuple
	for {
		tup, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, append(Tuple(nil), tup...))
	}
	if !reflect.DeepEqual(got, tuples) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	schema := MustSchema("a", "b")
	f := func(raw [][2]string) bool {
		var tuples []Tuple
		for _, p := range raw {
			if strings.ContainsRune(p[0], rune(KeySep)) || strings.ContainsRune(p[1], rune(KeySep)) {
				return true // reserved byte, writer rejects by design
			}
			tuples = append(tuples, Tuple{p[0], p[1]})
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf, schema)
		for _, tup := range tuples {
			if err := w.Write(tup); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range tuples {
			got, err := r.Next()
			if err != nil || !reflect.DeepEqual(append(Tuple(nil), got...), want) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryWriterRejects(t *testing.T) {
	schema := MustSchema("a")
	w := NewBinaryWriter(io.Discard, schema)
	if err := w.Write(Tuple{"with\x1fsep"}); err == nil {
		t.Error("key separator accepted")
	}
	if err := w.Write(Tuple{"x", "y"}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestBinaryReaderErrors(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewBinaryReader(strings.NewReader("NOTMAGIC")); err == nil {
		t.Error("bad magic accepted")
	}
	// A valid header followed by a truncated record.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, MustSchema("a", "b"))
	if err := w.Write(Tuple{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewBinaryReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, MustSchema("x"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v", err)
	}
}

func TestBinaryNextBatch(t *testing.T) {
	schema := MustSchema("Source", "Destination", "Service")
	var tuples []Tuple
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, Tuple{
			"S" + strings.Repeat("x", i%17),
			"D" + strings.Repeat("y", i%5),
			[]string{"WWW", "FTP", "P2P", ""}[i%4],
		})
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, schema)
	for _, tup := range tuples {
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	// Batch sizes that divide the stream evenly, leave a remainder, and
	// exceed it entirely.
	for _, size := range []int{1, 7, 250, 256, 5000} {
		r, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got []Tuple
		batch := make([]Tuple, size)
		for {
			n, err := r.NextBatch(batch)
			for _, tup := range batch[:n] {
				got = append(got, append(Tuple(nil), tup...))
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
		}
		if !reflect.DeepEqual(got, tuples) {
			t.Fatalf("size %d: batch decode diverges from written stream (%d vs %d tuples)", size, len(got), len(tuples))
		}
		// Exhausted stream keeps returning (0, io.EOF).
		if n, err := r.NextBatch(batch); n != 0 || err != io.EOF {
			t.Fatalf("size %d: post-EOF NextBatch = (%d, %v)", size, n, err)
		}
	}
}

func TestBinaryNextBatchTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, MustSchema("a", "b"))
	for i := 0; i < 3; i++ {
		if err := w.Write(Tuple{"x", "y"}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	data := buf.Bytes()
	r, err := NewBinaryReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Tuple, 8)
	n, err := r.NextBatch(batch)
	if n != 2 {
		t.Fatalf("decoded %d complete tuples before truncation, want 2", n)
	}
	if err == nil || err == io.EOF {
		t.Fatalf("truncated record reported %v, want a decode error", err)
	}
}

func TestOpenReaderSniffs(t *testing.T) {
	schema := MustSchema("a", "b")
	tuple := Tuple{"1", "2"}

	var text bytes.Buffer
	tw := NewWriter(&text, schema)
	if err := tw.Write(tuple); err != nil {
		t.Fatal(err)
	}
	tw.Flush()

	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin, schema)
	if err := bw.Write(tuple); err != nil {
		t.Fatal(err)
	}
	bw.Flush()

	for name, data := range map[string][]byte{"text": text.Bytes(), "binary": bin.Bytes()} {
		src, sch, err := OpenReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(sch.Names(), schema.Names()) {
			t.Fatalf("%s: schema %v", name, sch.Names())
		}
		got, err := src.Next()
		if err != nil || got[0] != "1" || got[1] != "2" {
			t.Fatalf("%s: tuple %v, %v", name, got, err)
		}
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("%s: expected EOF, got %v", name, err)
		}
	}
}
