// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6), shared by cmd/impbench and the repository's
// benchmarks. Each runner returns structured rows and can print them in a
// layout mirroring the paper, so a run regenerates the table/figure series
// directly.
package experiments

import (
	"fmt"
	"io"

	"implicate/internal/core"
	"implicate/internal/fm"
	"implicate/internal/gen"
	"implicate/internal/metrics"
)

// DatasetOneConfig parametrizes the Figures 4–6 reproduction: the Dataset
// One error sweep over implication counts of 10%–90% of |A|, for bounded
// (F=4) and unbounded fringes, with stochastic averaging over 64 bitmaps.
// The paper runs 100 repetitions per point at cardinalities up to 100,000;
// Runs and Cards scale that to the available time budget.
type DatasetOneConfig struct {
	// C is the one-to-c implication width: 1 (Figure 4), 2 (Figure 5) or 4
	// (Figure 6).
	C int
	// Cards is the |A| sweep; the paper uses 100, 1e3, 1e4, 1e5.
	Cards []int
	// Fracs are the imposed implication counts as fractions of |A|; the
	// paper sweeps 0.1–0.9.
	Fracs []float64
	// Runs is the number of repetitions per point (the paper uses 100).
	Runs int
	// Seed drives the generators; run r of point p uses a derived seed.
	Seed int64
	// Options configure the sketches (bitmaps, fringe size, slack).
	Options core.Options
}

func (c DatasetOneConfig) withDefaults() DatasetOneConfig {
	if c.C == 0 {
		c.C = 1
	}
	if len(c.Cards) == 0 {
		c.Cards = []int{100, 1000}
	}
	if len(c.Fracs) == 0 {
		c.Fracs = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	return c
}

// DatasetOneRow is one point of a Figures 4–6 series.
type DatasetOneRow struct {
	CardA int
	Count int // imposed implication count (the x-axis)
	// BoundedErr/BoundedDev are the mean relative error and its standard
	// error for the bounded fringe (the paper's "Bounded Fringe" series).
	BoundedErr, BoundedDev float64
	// UnboundedErr/UnboundedDev are the same for the unbounded fringe.
	UnboundedErr, UnboundedDev float64
	// CIErr is the mean error of the paper's Algorithm-2 position-difference
	// estimator on the bounded sketch (the estimator ablation of DESIGN.md).
	CIErr float64
	// Tuples is the stream length of one run.
	Tuples int
}

// RunDatasetOne executes the sweep and returns one row per (card, frac).
func RunDatasetOne(cfg DatasetOneConfig) ([]DatasetOneRow, error) {
	cfg = cfg.withDefaults()
	var rows []DatasetOneRow
	for _, card := range cfg.Cards {
		for _, frac := range cfg.Fracs {
			count := int(float64(card) * frac)
			if count < 1 {
				count = 1
			}
			var bErr, uErr, ciErr metrics.Welford
			var tuples int
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(card)*1_000_003 + int64(count)*97 + int64(run)
				d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
					CardA: card, Count: count, C: cfg.C, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				tuples = len(d.Pairs)
				optsB := cfg.Options
				optsB.Seed = uint64(seed) * 2654435761
				optsU := optsB
				optsU.Unbounded = true
				bounded, err := core.NewSketch(d.Conditions, optsB)
				if err != nil {
					return nil, err
				}
				unbounded, err := core.NewSketch(d.Conditions, optsU)
				if err != nil {
					return nil, err
				}
				d.Feed(bounded, unbounded)
				truth := float64(d.Count)
				bErr.Add(metrics.RelErr(truth, bounded.ImplicationCount()))
				uErr.Add(metrics.RelErr(truth, unbounded.ImplicationCount()))
				ciErr.Add(metrics.RelErr(truth, bounded.CIImplicationCount()))
			}
			rows = append(rows, DatasetOneRow{
				CardA:        card,
				Count:        count,
				BoundedErr:   bErr.Mean(),
				BoundedDev:   bErr.StdErrOfMean(),
				UnboundedErr: uErr.Mean(),
				UnboundedDev: uErr.StdErrOfMean(),
				CIErr:        ciErr.Mean(),
				Tuples:       tuples,
			})
		}
	}
	return rows, nil
}

// PrintDatasetOne renders rows in the layout of Figures 4–6: one block per
// cardinality, implication count on the x-axis, mean relative error per
// series.
func PrintDatasetOne(w io.Writer, figure string, c int, rows []DatasetOneRow) {
	fmt.Fprintf(w, "%s — Dataset One, c=%d (mean relative error; ± is the std error of the mean)\n", figure, c)
	last := -1
	for _, r := range rows {
		if r.CardA != last {
			fmt.Fprintf(w, "|A| = %d\n", r.CardA)
			fmt.Fprintf(w, "  %12s  %22s  %22s  %14s\n", "ImplCount", "BoundedFringe", "UnboundedFringe", "CI(Alg2)")
			last = r.CardA
		}
		fmt.Fprintf(w, "  %12d  %10.4f ± %-9.4f  %10.4f ± %-9.4f  %14.4f\n",
			r.Count, r.BoundedErr, r.BoundedDev, r.UnboundedErr, r.UnboundedDev, r.CIErr)
	}
}

// Table5 reports the §6.2 algorithm parameters (Table 5), kept as a runner
// so the reproduction prints exactly what it uses.
type Table5 struct {
	NIPSBitmaps   int
	NIPSK         int
	NIPSFringe    int
	NIPSItemsets  int // (2^F −1)·bitmaps·K
	DSSampleSize  int
	DSBound       int
	ILCEps        float64
	FMBiasPhi     float64
	FMStdErrorPct float64
}

// DefaultTable5 returns the paper's parameters.
func DefaultTable5() Table5 {
	return Table5{
		NIPSBitmaps:   64,
		NIPSK:         2,
		NIPSFringe:    4,
		NIPSItemsets:  (1<<4 - 1) * 64 * 2,
		DSSampleSize:  1920,
		DSBound:       39,
		ILCEps:        0.01,
		FMBiasPhi:     fm.Phi,
		FMStdErrorPct: fm.StdError(64) * 100,
	}
}

// Print renders Table 5.
func (t Table5) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 5 — Algorithm parameters")
	fmt.Fprintf(w, "  NIPS/CI bitmaps        %d\n", t.NIPSBitmaps)
	fmt.Fprintf(w, "  NIPS/CI K              %d\n", t.NIPSK)
	fmt.Fprintf(w, "  NIPS/CI fringe size    %d  (itemset budget %d)\n", t.NIPSFringe, t.NIPSItemsets)
	fmt.Fprintf(w, "  DS sample size         %d\n", t.DSSampleSize)
	fmt.Fprintf(w, "  DS bound t             %d\n", t.DSBound)
	fmt.Fprintf(w, "  ILC ε                  %g\n", t.ILCEps)
	fmt.Fprintf(w, "  FM bias φ              %.5f (expected error %.1f%%)\n", t.FMBiasPhi, t.FMStdErrorPct)
}

// Table3Row is one dimension of the §6.2 dataset.
type Table3Row struct {
	Dimension   string
	Cardinality int
}

// Table3 returns the surrogate's dimension cardinalities, identical to the
// paper's Table 3.
func Table3() []Table3Row {
	return []Table3Row{
		{"A", gen.CardA}, {"B", gen.CardB}, {"C", gen.CardC}, {"D", gen.CardD},
		{"E", gen.CardE}, {"F", gen.CardF}, {"G", gen.CardG}, {"H", gen.CardH},
	}
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — Dimension cardinalities (OLAP surrogate)")
	for _, r := range Table3() {
		fmt.Fprintf(w, "  %-2s %6d\n", r.Dimension, r.Cardinality)
	}
}
