package pipeline

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"implicate/internal/core"
	"implicate/internal/dsample"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/lossy"
	"implicate/internal/query"
	"implicate/internal/stream"
)

func testSchema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("Source", "Destination", "Service")
}

// workload builds nBatches batches of batchSize tuples with key repetition
// rich enough to exercise supports, exclusions and fringe movement.
func workload(nBatches, batchSize int) [][]stream.Tuple {
	batches := make([][]stream.Tuple, nBatches)
	n := 0
	for b := range batches {
		ts := make([]stream.Tuple, batchSize)
		for i := range ts {
			ts[i] = stream.Tuple{
				fmt.Sprintf("s%d", n%517),
				fmt.Sprintf("d%d", (n*7)%29),
				fmt.Sprintf("svc%d", n%3),
			}
			n++
		}
		batches[b] = ts
	}
	return batches
}

// backends returns the named estimator factories the determinism suite
// drives through the pool, spanning both concurrency classes.
func backends(seed uint64) map[string]query.Backend {
	return map[string]query.Backend{
		// Partition-safe.
		"sharded": func(cond imps.Conditions) (imps.Estimator, error) {
			return core.NewShardedSketch(cond, core.Options{Seed: seed}, 4)
		},
		"exact-striped": func(cond imps.Conditions) (imps.Estimator, error) {
			return exact.NewStriped(cond, 4)
		},
		// Serialized.
		"nips": func(cond imps.Conditions) (imps.Estimator, error) {
			return core.NewSketch(cond, core.Options{Seed: seed})
		},
		"exact": func(cond imps.Conditions) (imps.Estimator, error) {
			return exact.NewCounter(cond)
		},
		"ilc": func(cond imps.Conditions) (imps.Estimator, error) {
			return lossy.NewILC(cond, 0.02, 0.02)
		},
		"ds": func(cond imps.Conditions) (imps.Estimator, error) {
			return dsample.New(cond, 512, 39, seed+7)
		},
	}
}

// registerSuite registers a mixed statement set over one backend: a plain
// statement, a filtered one, a mode alias that shares the first estimator,
// and — for serialized-class runs — a windowed statement.
func registerSuite(t *testing.T, eng *query.Engine, backend query.Backend, windowed bool) {
	t.Helper()
	reg := func(sql string) {
		t.Helper()
		if _, err := eng.RegisterSQL(sql, backend); err != nil {
			t.Fatalf("register %q: %v", sql, err)
		}
	}
	reg(`SELECT COUNT(DISTINCT Source) FROM s WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1`)
	reg(`SELECT COUNT(DISTINCT Source) FROM s WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1 AND Service = 'svc1'`)
	// Same predicate, different mode: shares the first statement's estimator.
	reg(`SELECT COUNT(DISTINCT Source) FROM s WHERE Source NOT IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1`)
	if windowed {
		reg(`SELECT COUNT(DISTINCT Source) FROM s WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1 WINDOW 2000 EVERY 500`)
	}
}

// runPool drives the batches through a pool of the given size and returns
// the engine's marshalled state.
func runPool(t *testing.T, backend query.Backend, windowed bool, batches [][]stream.Tuple, workers int) ([]byte, *query.Engine) {
	t.Helper()
	eng := query.NewEngine(testSchema(t))
	registerSuite(t, eng, backend, windowed)
	pool, err := New(eng, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	// Plan concurrently (like the server's connection readers), dispatch in
	// order from this goroutine.
	planned := make([]*Batch, len(batches))
	var wg sync.WaitGroup
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			planned[i] = pool.Plan(batches[i])
		}(i)
	}
	wg.Wait()
	for _, b := range planned {
		pool.Dispatch(b)
	}
	pool.Fence()
	state, err := eng.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	return state, eng
}

// TestPoolDeterminism is the signature invariant: for every backend, the
// engine state after pool ingestion at sizes {1, 2, 4, 8} is bit-identical
// to a serial ProcessBatch run over the same batch sequence.
func TestPoolDeterminism(t *testing.T) {
	batches := workload(40, 500)
	for name, backend := range backends(42) {
		t.Run(name, func(t *testing.T) {
			windowed := name != "sharded" && name != "exact-striped"
			serial := query.NewEngine(testSchema(t))
			registerSuite(t, serial, backend, windowed)
			for _, ts := range batches {
				serial.ProcessBatch(ts)
			}
			want, err := serial.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				got, eng := runPool(t, backend, windowed, batches, workers)
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: pool state diverged from serial run", workers)
				}
				if got, want := eng.Tuples(), serial.Tuples(); got != want {
					t.Errorf("workers=%d: tuple count %d, want %d", workers, got, want)
				}
				for i, st := range eng.Statements() {
					if got, want := st.Count(), serial.Statements()[i].Count(); got != want {
						t.Errorf("workers=%d stmt %d: count %v, want %v", workers, i, got, want)
					}
				}
			}
		})
	}
}

// TestPoolConcurrentReaders runs Count and Tuples readers against a live
// pool (run with -race): reads must be safe mid-ingest for both classes,
// and the final state must still match the serial run.
func TestPoolConcurrentReaders(t *testing.T) {
	batches := workload(30, 400)
	for _, name := range []string{"sharded", "exact-striped", "nips", "ilc"} {
		backend := backends(7)[name]
		t.Run(name, func(t *testing.T) {
			windowed := name == "nips" || name == "ilc"
			serial := query.NewEngine(testSchema(t))
			registerSuite(t, serial, backend, windowed)
			for _, ts := range batches {
				serial.ProcessBatch(ts)
			}
			want, err := serial.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			eng := query.NewEngine(testSchema(t))
			registerSuite(t, eng, backend, windowed)
			pool, err := New(eng, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var readers sync.WaitGroup
			for r := 0; r < 3; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, st := range eng.Statements() {
							_ = st.Count()
						}
						_ = eng.Tuples()
					}
				}()
			}
			for _, ts := range batches {
				pool.Dispatch(pool.Plan(ts))
			}
			pool.Fence()
			close(stop)
			readers.Wait()
			got, err := eng.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			pool.Close()
			if !bytes.Equal(got, want) {
				t.Error("state under concurrent readers diverged from serial run")
			}
		})
	}
}

// TestPoolCallbacks checks the accounting hooks: one OnApplied per batch
// with the engine total already advanced, per-worker OnTask units covering
// every planned unit, and OnSaturated firing under a tiny queue.
func TestPoolCallbacks(t *testing.T) {
	batches := workload(20, 100)
	eng := query.NewEngine(testSchema(t))
	registerSuite(t, eng, backends(3)["exact-striped"], false)

	var appliedBatches, appliedTuples, tasks atomic.Int64
	var saturated atomic.Int64
	minTotal := int64(-1)
	var minMu sync.Mutex
	pool, err := New(eng, Config{
		Workers:  4,
		QueueLen: 1,
		OnApplied: func(n int) {
			appliedBatches.Add(1)
			appliedTuples.Add(int64(n))
			// The engine total must already include this batch.
			minMu.Lock()
			if got := eng.Tuples(); got < appliedTuples.Load() {
				minTotal = got
			}
			minMu.Unlock()
		},
		OnTask:      func(worker, units int) { tasks.Add(int64(units)) },
		OnSaturated: func() { saturated.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range batches {
		pool.Dispatch(pool.Plan(ts))
	}
	pool.Fence()
	pool.Close()

	if appliedBatches.Load() != int64(len(batches)) {
		t.Errorf("OnApplied ran %d times, want %d", appliedBatches.Load(), len(batches))
	}
	if appliedTuples.Load() != 20*100 {
		t.Errorf("OnApplied tuple total %d, want %d", appliedTuples.Load(), 20*100)
	}
	if minTotal >= 0 {
		t.Errorf("OnApplied observed engine total %d below the applied total", minTotal)
	}
	if tasks.Load() == 0 {
		t.Error("OnTask never ran")
	}
	if saturated.Load() == 0 {
		t.Error("OnSaturated never fired despite QueueLen=1")
	}
}

// TestPoolFenceBarrier checks that Fence observes every prior dispatch.
func TestPoolFenceBarrier(t *testing.T) {
	eng := query.NewEngine(testSchema(t))
	registerSuite(t, eng, backends(5)["sharded"], false)
	pool, err := New(eng, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	total := 0
	for i, ts := range workload(10, 300) {
		pool.Dispatch(pool.Plan(ts))
		total += len(ts)
		if i%3 == 0 {
			pool.Fence()
			if got := eng.Tuples(); got != int64(total) {
				t.Fatalf("after fence: engine total %d, want %d", got, total)
			}
		}
	}
	pool.Fence()
	if got := eng.Tuples(); got != int64(total) {
		t.Fatalf("after final fence: engine total %d, want %d", got, total)
	}
}

// TestPoolConfigValidation covers constructor errors and defaults.
func TestPoolConfigValidation(t *testing.T) {
	eng := query.NewEngine(testSchema(t))
	if _, err := New(eng, Config{Workers: -1}); err == nil {
		t.Error("negative worker count accepted")
	}
	if _, err := New(eng, Config{QueueLen: -1}); err == nil {
		t.Error("negative queue length accepted")
	}
	pool, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Workers() != 1 || pool.Partitions() != 1 {
		t.Errorf("default pool is %d workers / %d partitions, want 1/1", pool.Workers(), pool.Partitions())
	}
	pool.Close()
	pool, err = New(eng, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Partitions() != 4 {
		t.Errorf("3 workers plan against %d partitions, want 4", pool.Partitions())
	}
	pool.Close()
}
