package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"implicate/internal/client"
	"implicate/internal/exact"
	"implicate/internal/gen"
	"implicate/internal/imps"
	"implicate/internal/query"
	"implicate/internal/server"
	"implicate/internal/stream"
)

// ServeConfig parametrizes the serving-layer throughput harness: a loopback
// impserved instance ingesting one synthetic stream over the wire protocol
// at several pipeline pool sizes, so the worker fan-out (DESIGN.md §10) is
// measured end to end — decode, plan, dispatch, apply, drain.
type ServeConfig struct {
	// Tuples is the stream length per variant.
	Tuples int
	// Batch is the tuples-per-IngestBatch size.
	Batch int
	// Producers is the number of concurrent client goroutines (one
	// connection each); defaults to 4.
	Producers int
	// Workers lists the pool sizes to run; defaults to 1, 4.
	Workers []int
	// Queue is the server's ingest queue depth in batches.
	Queue int
	// Seed drives the workload generator.
	Seed int64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Tuples == 0 {
		c.Tuples = 500_000
	}
	if c.Batch == 0 {
		c.Batch = 1000
	}
	if c.Producers < 1 {
		c.Producers = 4
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 4}
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// serveSQL matches ingestCond, so the serve and ingest harnesses measure
// the same statistic.
const serveSQL = `SELECT COUNT(DISTINCT A) FROM s WHERE A IMPLIES B WITH SUPPORT >= 5, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1`

// ServeRow is one pool size's measured end-to-end throughput.
type ServeRow struct {
	// Workers is the pipeline pool size.
	Workers int `json:"workers"`
	// Producers is the number of concurrent client connections.
	Producers int `json:"producers"`
	// Tuples is the stream length.
	Tuples int `json:"tuples"`
	// Seconds is the wall clock from first send to drained shutdown.
	Seconds float64 `json:"seconds"`
	// TuplesPerSec is Tuples/Seconds.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// Implications is the final statement count — identical across pool
	// sizes by the determinism invariant, and recorded so a variant that
	// dropped tuples cannot report a flattering throughput.
	Implications float64 `json:"implications"`
	// Rejected counts backpressure replies the producers retried.
	Rejected int64 `json:"rejected"`
	// PoolSaturation counts dispatches that found a worker queue full.
	PoolSaturation int64 `json:"pool_saturation"`
}

// RunServe measures loopback ingest throughput at each configured pool
// size. Every variant sees the same pre-encoded batches; the striped exact
// counter backend is used so the ingest path is partition-safe (fans out
// across workers) and every variant's final count is exact and must agree.
func RunServe(cfg ServeConfig) ([]ServeRow, error) {
	cfg = cfg.withDefaults()

	d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
		CardA: cfg.Tuples / 10,
		Count: cfg.Tuples / 20,
		C:     2,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	schema, err := stream.NewSchema("A", "B")
	if err != nil {
		return nil, err
	}
	// Printable keys: the wire schema rejects gen.Key's binary form (it may
	// contain the reserved separator byte).
	tuples := make([]stream.Tuple, 0, cfg.Tuples)
	for _, p := range d.Pairs {
		tuples = append(tuples, stream.Tuple{fmt.Sprintf("a%d", p.A), fmt.Sprintf("b%d", p.B)})
	}
	for len(tuples) < cfg.Tuples {
		tuples = append(tuples, tuples[:min(len(tuples), cfg.Tuples-len(tuples))]...)
	}
	tuples = tuples[:cfg.Tuples]

	// Route tuples to producers by key hash, not by contiguous slice: the
	// exact exclusion rule is order-dependent per key ("failed the condition
	// at any point"), and producer batches interleave differently from run
	// to run. With each key owned by one producer, every key's tuple order
	// is fixed end to end (producer FIFO → dispatcher → partition FIFO), so
	// the final count is interleaving-invariant and must agree across pool
	// sizes — the bench doubles as a determinism check.
	byProducer := make([][]stream.Tuple, cfg.Producers)
	for _, t := range tuples {
		h := uint64(14695981039346656037)
		for i := 0; i < len(t[0]); i++ {
			h = (h ^ uint64(t[0][i])) * 1099511628211
		}
		p := int(h % uint64(cfg.Producers))
		byProducer[p] = append(byProducer[p], t)
	}

	// Pre-encode each producer's batches once, outside every timed region.
	type encBatch struct {
		payload []byte
		n       int64
	}
	payloads := make([][]encBatch, cfg.Producers)
	for p := range byProducer {
		own := byProducer[p]
		for off := 0; off < len(own); off += cfg.Batch {
			end := min(off+cfg.Batch, len(own))
			enc, err := client.EncodeBatch(schema, own[off:end])
			if err != nil {
				return nil, err
			}
			payloads[p] = append(payloads[p], encBatch{enc, int64(end - off)})
		}
	}

	var rows []ServeRow
	for _, workers := range cfg.Workers {
		eng := query.NewEngine(schema)
		st, err := eng.RegisterSQL(serveSQL, func(cond imps.Conditions) (imps.Estimator, error) {
			return exact.NewStriped(cond, 0)
		})
		if err != nil {
			return nil, err
		}
		srv, err := server.Listen(server.Config{
			Addr:       "127.0.0.1:0",
			Schema:     schema,
			Engine:     eng,
			QueueDepth: cfg.Queue,
			Workers:    workers,
		})
		if err != nil {
			return nil, err
		}

		var wg sync.WaitGroup
		errs := make(chan error, cfg.Producers)
		start := time.Now()
		for p := 0; p < cfg.Producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				cl, err := client.Dial(srv.Addr(), schema, client.Options{
					Conns:       1,
					BusyRetries: -1,
					RetryBase:   200 * time.Microsecond,
					RetryCap:    5 * time.Millisecond,
				})
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				for _, b := range payloads[p] {
					if err := cl.IngestEncoded(b.payload, b.n); err != nil {
						errs <- err
						return
					}
				}
			}(p)
		}
		wg.Wait()
		// Graceful close drains every acknowledged batch; the drain is part
		// of the measured time, so a deep queue cannot fake throughput.
		if err := srv.Close(); err != nil {
			return nil, err
		}
		dur := time.Since(start)
		close(errs)
		for err := range errs {
			return nil, err
		}

		sn := srv.Telemetry().Snapshot()
		if sn.TuplesIngested != int64(cfg.Tuples) {
			return nil, fmt.Errorf("serve bench: %d workers applied %d of %d tuples", workers, sn.TuplesIngested, cfg.Tuples)
		}
		rows = append(rows, ServeRow{
			Workers:        workers,
			Producers:      cfg.Producers,
			Tuples:         cfg.Tuples,
			Seconds:        dur.Seconds(),
			TuplesPerSec:   float64(cfg.Tuples) / dur.Seconds(),
			Implications:   st.Count(),
			Rejected:       sn.BatchesRejected,
			PoolSaturation: sn.PoolSaturation,
		})
	}
	for _, r := range rows[1:] {
		if r.Implications != rows[0].Implications {
			return nil, fmt.Errorf("serve bench: %d-worker count %v != %d-worker count %v — determinism invariant broken",
				r.Workers, r.Implications, rows[0].Workers, rows[0].Implications)
		}
	}
	return rows, nil
}

// PrintServe writes the serving-layer throughput table.
func PrintServe(w io.Writer, cfg ServeConfig, rows []ServeRow) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Serving-layer ingest throughput (%d tuples, batch %d, %d producers, GOMAXPROCS %d)\n",
		cfg.Tuples, cfg.Batch, cfg.Producers, runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\ttuples/s\tseconds\trejected\tpool-saturation\timplications")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.3f\t%d\t%d\t%.1f\n",
			r.Workers, r.TuplesPerSec, r.Seconds, r.Rejected, r.PoolSaturation, r.Implications)
	}
	tw.Flush()
}

// serveReport is the JSON schema of -json output.
type serveReport struct {
	Tuples    int        `json:"tuples"`
	Batch     int        `json:"batch"`
	Producers int        `json:"producers"`
	MaxProcs  int        `json:"gomaxprocs"`
	Rows      []ServeRow `json:"rows"`
}

// WriteServeJSON writes the rows as an indented JSON report.
func WriteServeJSON(w io.Writer, cfg ServeConfig, rows []ServeRow) error {
	cfg = cfg.withDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(serveReport{
		Tuples:    cfg.Tuples,
		Batch:     cfg.Batch,
		Producers: cfg.Producers,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Rows:      rows,
	})
}
