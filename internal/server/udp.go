// The UDP ingest lane: the server side of internal/proto's datagram path.
// One goroutine owns the socket and applies datagrams; per-source state
// (cumulative watermark, reorder window, drop counters) sits behind a
// mutex only because TUDPAck polls read it from connection readers.
//
// Determinism: the lane applies each source's datagrams strictly in
// sequence order — out-of-order arrivals wait in a bounded window,
// duplicates and too-far-ahead arrivals are dropped — so per-source tuple
// order equals send order, the same contract the TCP lane gets from its
// connection FIFO. Batches from different sources interleave in arrival
// order, exactly as batches from different TCP connections do.
package server

import (
	"fmt"
	"net"
	"sync"

	"implicate/internal/obs"
	"implicate/internal/proto"
)

// udpSource is the per-producer lane state. The accounting invariant is
// applied + decode-failure drops == cum (NOT applied == cum): a CRC-valid
// batch that fails to decode advances cum while counting in drops, since a
// retransmission could not help it. Window-overflow and drain drops do not
// advance cum and are recoverable by retransmission; see
// proto.UDPAck.Applied.
type udpSource struct {
	cum     uint64 // every seq <= cum is consumed (applied or decode-dropped)
	applied uint64 // batches applied to the engine (cum minus decode drops)
	dups    uint64 // duplicates dropped
	drops   uint64 // non-duplicate drops (window overflow, drain, bad batch)
	// pending buffers out-of-order datagram payloads (retained copies —
	// the receive buffer is reused per read) until the sequence gap fills.
	pending map[uint64][]byte
}

type udpLane struct {
	s      *Server
	pc     *net.UDPConn
	window uint64

	mu   sync.Mutex
	srcs map[uint64]*udpSource

	done chan struct{}
}

func newUDPLane(s *Server, addr string, window int) (*udpLane, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp lane: %w", err)
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udp lane: %w", err)
	}
	// Producers burst whole windows of large batch datagrams; the default
	// socket buffer (~200KiB) overflows under a handful of sources and
	// turns into a retransmit storm. Best effort — the kernel clamps to
	// its rmem_max.
	_ = pc.SetReadBuffer(4 << 20)
	l := &udpLane{
		s:      s,
		pc:     pc,
		window: uint64(window),
		srcs:   make(map[uint64]*udpSource),
		done:   make(chan struct{}),
	}
	go l.readLoop()
	return l, nil
}

// close stops the lane and waits for the reader to finish its in-flight
// datagram. Callers must keep the dispatcher draining until this returns —
// the reader may be blocked enqueueing.
func (l *udpLane) close() {
	l.pc.Close()
	<-l.done
}

func (l *udpLane) readLoop() {
	defer close(l.done)
	buf := make([]byte, proto.MaxDatagram)
	for {
		n, _, err := l.pc.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		d, err := proto.DecodeDatagram(buf[:n])
		if err != nil {
			// Pre-sequencing rejection: truncated, version-skewed or failing
			// its checksum. Counts in the aggregate and in its own series.
			l.s.tel.AddUDPDrop()
			l.s.tel.AddUDPCRCFailure()
			continue
		}
		l.s.tel.AddUDPDatagram()
		l.ingest(d)
	}
}

// ingest routes one valid datagram: apply in order, buffer ahead-of-order
// within the window, drop duplicates and window overflows. Only the read
// loop calls it, so source state mutates single-threaded; the lock exists
// for ack polls reading counters from other goroutines.
func (l *udpLane) ingest(d proto.Datagram) {
	l.mu.Lock()
	src := l.srcs[d.Source]
	if src == nil {
		src = &udpSource{pending: make(map[uint64][]byte)}
		l.srcs[d.Source] = src
	}
	switch {
	case d.Seq <= src.cum:
		src.dups++
		l.mu.Unlock()
		l.s.tel.AddUDPDup()
		return
	case d.Seq > src.cum+l.window:
		src.drops++
		l.mu.Unlock()
		l.s.tel.AddUDPDrop()
		l.s.tel.AddUDPWindowDrop()
		return
	case d.Seq != src.cum+1:
		if _, buffered := src.pending[d.Seq]; buffered {
			src.dups++
			l.mu.Unlock()
			l.s.tel.AddUDPDup()
			return
		}
		// Out of order: park a retained copy until the gap fills. The
		// datagram payload aliases the receive buffer, which the next
		// read overwrites.
		src.pending[d.Seq] = proto.RetainPayload(d.Payload)
		l.mu.Unlock()
		l.s.tel.AddUDPReorder()
		return
	}
	l.mu.Unlock()
	// In order: apply directly from the receive buffer, then drain any
	// buffered successors the gap was holding back.
	l.apply(src, d.Seq, d.Payload, false)
	for {
		l.mu.Lock()
		next := src.cum + 1
		p, ok := src.pending[next]
		if ok {
			delete(src.pending, next)
		}
		l.mu.Unlock()
		if !ok {
			return
		}
		l.apply(src, next, p, true)
	}
}

// apply decodes, plans and enqueues one in-sequence batch, then advances
// the source watermark. The enqueue blocks when the ingest queue is full —
// the lane's flow control is the socket buffer (and, past that, the
// network's willingness to drop). A batch that decodes badly counts as a
// drop but still advances the watermark: its CRC proved it is what the
// producer sent, so retransmission would not help, and stalling the
// source forever helps less. A draining server instead refuses WITHOUT
// advancing — the batch was not applied, and the watermark promises
// applied-exactly-once; the producer's flush fails on its control
// connection shortly after.
func (l *udpLane) apply(src *udpSource, seq uint64, payload []byte, retained bool) {
	if retained {
		defer proto.ReleasePayload(payload)
	}
	if l.s.draining.Load() {
		l.mu.Lock()
		src.drops++
		l.mu.Unlock()
		l.s.tel.AddUDPDrop()
		return
	}
	b := l.s.def.Pool.NewBatch()
	tuples, err := l.s.decodeBatch(b.Arena(), payload)
	if err != nil {
		b.Release()
	} else {
		// Datagrams carry no trace context (the lane is fire-and-forget), so
		// the batch's spans are roots.
		if !l.s.enqueueWait(l.s.def, l.s.planInto(l.s.def, b, tuples, obs.Link{})) {
			// The default lane closed mid-shutdown: the batch was not
			// applied, so like the draining branch this refuses WITHOUT
			// advancing the watermark.
			b.Release()
			l.mu.Lock()
			src.drops++
			l.mu.Unlock()
			l.s.tel.AddUDPDrop()
			return
		}
	}
	l.mu.Lock()
	src.cum = seq
	if err == nil {
		src.applied++
	} else {
		src.drops++
	}
	l.mu.Unlock()
	if err != nil {
		l.s.tel.AddUDPDrop()
		l.s.tel.AddUDPDecodeDrop()
	} else {
		l.s.tel.AddUDPApplied()
	}
}

// ack reports the source's cumulative state for a TUDPAck poll.
func (l *udpLane) ack(source uint64) proto.UDPAck {
	l.mu.Lock()
	defer l.mu.Unlock()
	src := l.srcs[source]
	if src == nil {
		return proto.UDPAck{}
	}
	return proto.UDPAck{Cum: src.cum, Applied: src.applied, Dups: src.dups, Drops: src.drops}
}
