package pipeline

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"implicate/internal/imps"
	"implicate/internal/query"
	"implicate/internal/snapshot"
	"implicate/internal/stream"
)

// unhashedAdder hides an estimator's HashedPartitionedAdder fast path so
// the planner is forced through the un-hashed pair IR, while everything a
// statement needs (Estimator, partitioned ingest) still forwards to the
// inner estimator. The determinism suite uses it to prove the hashed and
// un-hashed plan paths build bit-identical state.
type unhashedAdder struct {
	imps.Estimator
	part imps.PartitionedAdder
}

func (u *unhashedAdder) AddBatch(pairs []imps.Pair)          { u.part.AddBatch(pairs) }
func (u *unhashedAdder) IngestPartition(a []byte, n int) int { return u.part.IngestPartition(a, n) }

var _ imps.PartitionedAdder = (*unhashedAdder)(nil)

// unhashedBackend wraps a backend's estimators in unhashedAdder.
func unhashedBackend(b query.Backend) query.Backend {
	return func(cond imps.Conditions) (imps.Estimator, error) {
		est, err := b(cond)
		if err != nil {
			return nil, err
		}
		return &unhashedAdder{Estimator: est, part: est.(imps.PartitionedAdder)}, nil
	}
}

// registerPropSuite registers two non-sharing partition-safe statements —
// a plain one and a filtered one — so per-statement estimator blobs compare
// one-to-one across runs regardless of estimator-sharing heuristics.
func registerPropSuite(t *testing.T, eng *query.Engine, backend query.Backend) {
	t.Helper()
	for _, sql := range []string{
		`SELECT COUNT(DISTINCT Source) FROM s WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1`,
		`SELECT COUNT(DISTINCT Source) FROM s WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1 AND Service = 'svc1'`,
	} {
		if _, err := eng.RegisterSQL(sql, backend); err != nil {
			t.Fatalf("register %q: %v", sql, err)
		}
	}
}

// estBlobs marshals each statement's inner estimator (unwrapping
// unhashedAdder), giving a state fingerprint comparable across the wrapped
// and unwrapped variants of one backend.
func estBlobs(t *testing.T, eng *query.Engine) [][]byte {
	t.Helper()
	var blobs [][]byte
	for _, st := range eng.Statements() {
		est := st.Estimator()
		if u, ok := est.(*unhashedAdder); ok {
			est = u.Estimator
		}
		blob, err := snapshot.Marshal(est)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	return blobs
}

func blobsEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// runDirect drives batches through Pool.Dispatch — the single-dispatcher
// path — and returns the per-statement state blobs.
func runDirect(t *testing.T, backend query.Backend, batches [][]stream.Tuple, workers int) [][]byte {
	t.Helper()
	eng := query.NewEngine(testSchema(t))
	registerPropSuite(t, eng, backend)
	pool, err := New(eng, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range batches {
		pool.Dispatch(pool.Plan(ts))
	}
	pool.Fence()
	blobs := estBlobs(t, eng)
	pool.Close()
	return blobs
}

// runFair drives batches through a Fair lane with the given dispatch shard
// count and returns the per-statement state blobs.
func runFair(t *testing.T, backend query.Backend, batches [][]stream.Tuple, workers, shards int) [][]byte {
	t.Helper()
	eng := query.NewEngine(testSchema(t))
	registerPropSuite(t, eng, backend)
	pool, err := New(eng, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFair(64, shards)
	l := f.AddLane("t", 1, 8, pool, nil)
	for _, ts := range batches {
		if _, ok := l.Enqueue(pool.Plan(ts)); !ok {
			t.Fatal("lane refused an enqueue")
		}
	}
	f.RemoveLane(l)
	f.Close()
	pool.Fence()
	blobs := estBlobs(t, eng)
	pool.Close()
	return blobs
}

// TestShardedDispatchDeterminism is the sharded-dispatch property test: for
// every partition-safe backend, engine state is bit-identical across
// {single dispatcher, fair dispatch at 1/2/4 shards} × workers {1,2,4,8} ×
// {hashed, un-hashed} plan paths, and every combination equals the serial
// reference. Run with -race: the sharded runs exercise concurrent
// DispatchShard calls over shared batches.
func TestShardedDispatchDeterminism(t *testing.T) {
	batches := workload(24, 300)
	for _, name := range []string{"sharded", "exact-striped"} {
		base := backends(42)[name]
		t.Run(name, func(t *testing.T) {
			var hashedRef [][]byte
			for _, hashed := range []bool{true, false} {
				backend := base
				if !hashed {
					backend = unhashedBackend(base)
				}
				serial := query.NewEngine(testSchema(t))
				registerPropSuite(t, serial, backend)
				for _, ts := range batches {
					serial.ProcessBatch(ts)
				}
				want := estBlobs(t, serial)
				if hashed {
					hashedRef = want
				} else if !blobsEqual(want, hashedRef) {
					// The two serial references must agree before the
					// parallel comparisons mean anything.
					t.Fatal("un-hashed serial state diverged from hashed serial state")
				}
				for _, workers := range []int{1, 2, 4, 8} {
					label := fmt.Sprintf("hashed=%v/workers=%d", hashed, workers)
					if got := runDirect(t, backend, batches, workers); !blobsEqual(got, want) {
						t.Errorf("%s: single-dispatcher state diverged from serial", label)
					}
					for _, shards := range []int{1, 2, 4} {
						if got := runFair(t, backend, batches, workers, shards); !blobsEqual(got, want) {
							t.Errorf("%s/shards=%d: fair-dispatch state diverged from serial", label, shards)
						}
					}
				}
			}
		})
	}
}

// TestShardedDispatchMultiTenant checks that DRR interleaving across lanes
// never leaks into per-tenant state: two lanes with unequal weights, fed
// concurrently through sharded dispatch, each finish bit-identical to their
// own serial reference at every shard count.
func TestShardedDispatchMultiTenant(t *testing.T) {
	batches := workload(30, 200)
	backend := backends(9)["sharded"]
	serial := query.NewEngine(testSchema(t))
	registerPropSuite(t, serial, backend)
	for _, ts := range batches {
		serial.ProcessBatch(ts)
	}
	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		f := NewFair(64, shards)
		engines := make([]*query.Engine, 2)
		pools := make([]*Pool, 2)
		lanes := make([]*Lane, 2)
		for i := range engines {
			engines[i] = query.NewEngine(testSchema(t))
			registerPropSuite(t, engines[i], backend)
			var err error
			pools[i], err = New(engines[i], Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			lanes[i] = f.AddLane(fmt.Sprintf("t%d", i), 1+2*i, 4, pools[i], nil)
		}
		var wg sync.WaitGroup
		for i := range lanes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, ts := range batches {
					if _, ok := lanes[i].Enqueue(pools[i].Plan(ts)); !ok {
						t.Error("lane refused an enqueue")
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i := range lanes {
			f.RemoveLane(lanes[i])
		}
		f.Close()
		for i := range engines {
			pools[i].Fence()
			got, err := engines[i].MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			pools[i].Close()
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d lane %d: state diverged from serial", shards, i)
			}
		}
	}
}
