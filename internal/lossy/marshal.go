package lossy

import (
	"fmt"
	"sort"

	"implicate/internal/imps"
	"implicate/internal/wire"
)

// Binary serialization for Implication Lossy Counting, so baseline
// statements survive engine checkpoints alongside the sketches. Itemset and
// pair samples are written in sorted key order for deterministic bytes.

const ilcMagic = "ILCS\x01"

// Conditions returns the implication conditions.
func (c *ILC) Conditions() imps.Conditions { return c.cond }

// MarshalBinary encodes the complete ILC state.
func (c *ILC) MarshalBinary() ([]byte, error) {
	e := wire.NewEncoder(1024)
	e.Raw([]byte(ilcMagic))

	e.U32(uint32(c.cond.MaxMultiplicity))
	e.I64(c.cond.MinSupport)
	e.U32(uint32(c.cond.TopC))
	e.F64(c.cond.MinTopConfidence)
	e.F64(c.relSupport)
	e.F64(c.eps)
	e.I64(c.n)

	keys := make([]string, 0, len(c.as))
	for a := range c.as {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, a := range keys {
		ae := c.as[a]
		e.Str(a)
		e.I64(ae.count)
		e.I64(ae.delta)
		e.Bool(ae.dirty)
		pm := c.pairs[a]
		if ae.dirty {
			// Dirty itemsets have had their pair entries deleted (§5.1).
			continue
		}
		bs := make([]string, 0, len(pm))
		for b := range pm {
			bs = append(bs, b)
		}
		sort.Strings(bs)
		e.U32(uint32(len(bs)))
		for _, b := range bs {
			e.Str(b)
			e.I64(pm[b].count)
			e.I64(pm[b].delta)
		}
	}
	return e.Bytes(), nil
}

// UnmarshalILC decodes an ILC previously encoded with MarshalBinary.
func UnmarshalILC(data []byte) (*ILC, error) {
	d := wire.NewDecoder(data)
	d.Magic(ilcMagic)

	var cond imps.Conditions
	cond.MaxMultiplicity = int(d.U32())
	cond.MinSupport = d.I64()
	cond.TopC = int(d.U32())
	cond.MinTopConfidence = d.F64()
	relSupport := d.F64()
	eps := d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	c, err := NewILC(cond, relSupport, eps)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
	}
	c.n = d.I64()
	if c.n < 0 {
		return nil, wire.ErrCorrupt
	}

	// Each itemset entry costs at least 4 + 8 + 8 + 1 bytes.
	nitems := d.Count(21)
	for i := 0; i < nitems; i++ {
		a := d.Str(1 << 24)
		ae := &ilcEntry{count: d.I64(), delta: d.I64(), dirty: d.Bool()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if ae.count < 1 || ae.delta < 0 {
			return nil, wire.ErrCorrupt
		}
		if _, dup := c.as[a]; dup {
			return nil, wire.ErrCorrupt
		}
		c.as[a] = ae
		if ae.dirty {
			continue
		}
		npairs := d.Count(20)
		if npairs == 0 {
			continue
		}
		pm := make(map[string]*entry, npairs)
		for p := 0; p < npairs; p++ {
			b := d.Str(1 << 24)
			pe := &entry{count: d.I64(), delta: d.I64()}
			if d.Err() != nil {
				return nil, d.Err()
			}
			if pe.count < 1 || pe.delta < 0 {
				return nil, wire.ErrCorrupt
			}
			if _, dup := pm[b]; dup {
				return nil, wire.ErrCorrupt
			}
			pm[b] = pe
		}
		c.pairs[a] = pm
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// ConfigFingerprint identifies the ILC algorithm and its parameters.
func (c *ILC) ConfigFingerprint() string {
	return fmt.Sprintf("ilc(%s|s=%g,eps=%g)", c.cond, c.relSupport, c.eps)
}
