package implicate

import (
	"implicate/internal/client"
	"implicate/internal/coord"
	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/proto"
	"implicate/internal/server"
	"implicate/internal/telemetry"
	"implicate/internal/tenant"
)

// Serving layer (DESIGN.md §9): the paper's §2 deployment is distributed —
// leaf nodes sketch their local streams and ship state upstream — and this
// is its wire. Serve starts a TCP server speaking a length-prefixed,
// CRC-tagged binary protocol whose RPCs are IngestBatch (remote tuple
// feed through a bounded queue with explicit backpressure), Query (read a
// registered statement's count), SnapshotMerge (merge a leaf's marshalled
// sketch into an aggregator — the §2 tree over a real network), Stats
// (runtime telemetry), Health (per-statement estimator introspection) and
// Trace (the server's span ring). Dial returns a pooled, pipelining
// client. The cmd/impserved command wraps Serve for standalone deployment,
// and ServeAdmin adds the HTTP admin endpoint (/metrics, /healthz,
// /trace, tenant CRUD, pprof) described in DESIGN.md §11.

// Server is a running ingest/query server; see Serve.
type Server = server.Server

// ServerConfig configures Serve: the listen address, the schema ingest
// batches must match, the engine with its registered statements, the
// ingest-queue bound, the ingest pipeline's worker-pool size (Workers;
// 0 picks GOMAXPROCS — results are bit-identical at any size, see
// DESIGN.md §10), and optional checkpointing (path + interval) for crash
// recovery via the replay contract of DESIGN.md §8.
type ServerConfig = server.Config

// Client is a connection pool to one server; see Dial.
type Client = client.Client

// ClientOptions tune a client: pool size, deadlines, and the retry/backoff
// budgets for backpressure and idempotent requests.
type ClientOptions = client.Options

// ServerStats is a frozen telemetry snapshot: tuples ingested, batches
// accepted and refused, merges, ingest-queue high-water mark, and per-RPC
// latency histograms.
type ServerStats = telemetry.Snapshot

// QueryResult is a Client.Query answer: the statement's current count and
// the server engine's applied-tuple total at the time of the read.
type QueryResult = proto.QueryResult

// HealthReport is one statement's estimator-health introspection record:
// memory footprint, bitmap fill, fringe occupancy and eviction counts, and
// the estimator's self-assessed relative error. Client.Health returns one
// per registered statement.
type HealthReport = imps.HealthReport

// TraceSpan is one event from the server's span ring — a planned batch, a
// dispatched batch, a worker apply, a merge, a checkpoint or a handled RPC,
// with wall times and per-kind attribution. Client.Trace returns the ring's
// recent spans when the server runs with ServerConfig.TraceSpans > 0.
type TraceSpan = obs.Span

// AdminServer is a running admin HTTP endpoint; see ServeAdmin.
type AdminServer = obs.AdminServer

// ErrBackpressure is returned by Client.IngestBatch when the server kept
// refusing the batch for longer than the client's retry budget. The batch
// was never enqueued; retrying later is safe.
var ErrBackpressure = client.ErrBackpressure

// TenantConfig declares one named tenant of a multi-tenant server
// (DESIGN.md §14): its namespace, the queries its engine serves, the
// backend that builds their estimators, and its quotas (ingest rate,
// memory budget) and fair-share dispatch weight. Set ServerConfig.Tenants
// (plus Backends and, optionally, TokenKey and CheckpointDir) to serve
// tenants; a server with none behaves exactly as before.
type TenantConfig = tenant.Config

// TenantBackends maps backend names to factories, resolving
// TenantConfig.Backend. The names are the server operator's vocabulary —
// what POST /tenants and -tenants specs may reference.
type TenantBackends = tenant.Backends

// TenantStats is one tenant's row in a ServerStats snapshot: applied
// tuples, admitted and refused batches, quota refusals, memory use against
// budget, weight, and lane high-water mark.
type TenantStats = telemetry.TenantStats

// ErrQuota matches (via errors.Is) the refusal Client.IngestBatch returns
// when the server's admission control rejected the batch at the tenant's
// quota. Unlike backpressure, a quota refusal is not retried by the
// client: the batch touched no engine state, and the *QuotaRefusal in the
// chain carries the server's RetryAfter hint for rate quotas.
var ErrQuota = client.ErrQuota

// QuotaRefusal is the concrete quota error; unwrap with errors.As for the
// server's message and retry hint.
type QuotaRefusal = client.QuotaRefusal

// DefaultTenant is the implicit namespace every unauthenticated session
// serves — the entire experience of a single-tenant server.
const DefaultTenant = tenant.DefaultName

// TenantToken derives the connect token for name under the server's token
// key — the credential DialTenant presents. Distribute tokens, not the
// key.
func TenantToken(key []byte, name string) string { return tenant.Token(key, name) }

// DialTenant connects like Dial and then pins every pooled connection to
// the named tenant by authenticating with its connect token — including
// connections transparently redialed after a failure mid-stream. An empty
// tenant name skips authentication and serves the default tenant.
func DialTenant(addr string, schema *Schema, tenantName, token string, opt ClientOptions) (*Client, error) {
	return client.DialTenant(addr, schema, tenantName, token, opt)
}

// Serve starts an ingest/query server for cfg.Engine on cfg.Addr. The
// engine must have its statements registered already and belongs to the
// server until Close returns. Close drains the ingest queue and, when
// checkpointing is configured, writes a final checkpoint — a batch the
// server acknowledged is never lost to a graceful shutdown.
func Serve(cfg ServerConfig) (*Server, error) { return server.Listen(cfg) }

// Dial connects to an impserved server. schema is required for
// IngestBatch and may be nil for query/merge/stats-only clients. The
// returned client pipelines requests over a small connection pool, retries
// backpressure replies with exponential backoff, and retries idempotent
// requests (Query, Stats, Health, Trace) across redials.
func Dial(addr string, schema *Schema, opt ClientOptions) (*Client, error) {
	return client.Dial(addr, schema, opt)
}

// ServeAdmin starts the HTTP admin endpoint for a running server:
// Prometheus-text /metrics, /healthz (with per-tenant health lines on
// multi-tenant servers), a JSON /trace span dump, tenant lifecycle routes
// (POST /tenants, DELETE /tenants/{name}), and the pprof suite under
// /debug/pprof/. The endpoint is unauthenticated — bind it to loopback or
// an operations network, never the ingest address.
// Close the returned AdminServer before (or after) closing srv; the two
// are independent.
func ServeAdmin(addr string, srv *Server) (*AdminServer, error) {
	return obs.ListenAdmin(addr, srv)
}

// Coordinator fronts a fleet of impserved leaves (DESIGN.md §13): it
// routes every ingested tuple to exactly one leaf through an immutable
// partition table, journals and delivers batches in order per leaf, tracks
// liveness with health probes, recovers a crashed leaf from its checkpoint
// before re-admitting it, and answers queries from the merged fleet state.
// With a fixed configuration and tuple sequence the fleet's answer is
// bit-identical whether or not leaves crashed along the way. Create with
// NewCoordinator.
type Coordinator = coord.Coordinator

// CoordinatorConfig configures NewCoordinator: the shared schema, the
// statements the fleet serves, the leaf specs (stable name + current
// address), and the routing, batching, probing and recovery tuning.
type CoordinatorConfig = coord.Config

// LeafSpec names one fleet member: a stable name (the route-table
// identity, surviving restarts and address changes) and its current
// address.
type LeafSpec = coord.LeafSpec

// CoordinatorFrontend serves a Coordinator over the same wire protocol an
// impserved leaf speaks, so producers, queriers and parent coordinators
// talk to the fleet exactly as they would to one server. Create with
// ServeCoordinator.
type CoordinatorFrontend = coord.Frontend

// ClusterStatus is a Coordinator's membership view: the route-table size
// and one LeafStatus per fleet member.
type ClusterStatus = proto.ClusterStatus

// LeafStatus is one fleet member's row in a ClusterStatus: address,
// liveness state, recovery epoch, partitions owned, and journal and
// delivery watermarks.
type LeafStatus = proto.LeafStatus

// SnapshotResult is a marshalled estimator pulled through the Snapshot
// RPC: the applied-tuple watermark, the estimator kind, and the sketch
// bytes, ready to merge upstream.
type SnapshotResult = proto.SnapshotResult

// NewCoordinator validates cfg, dials every leaf eagerly, and starts the
// per-leaf feeders and health probers. Close releases them; call Flush
// first for a clean handoff.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) { return coord.New(cfg) }

// FleetSpan is one span of an assembled cross-node fleet trace: the node
// that recorded it ("coord", or a leaf's configured name) plus the span
// itself. Client.FleetTrace returns these.
type FleetSpan = obs.FleetSpan

// FleetJSON is the coordinator admin endpoint's /fleet document: the
// coordinator's own throughput plus one merged observability row per leaf.
// imptop's coordinator mode decodes it.
type FleetJSON = obs.FleetJSON

// FleetLeafJSON is one leaf's merged row in a FleetJSON document.
type FleetLeafJSON = obs.FleetLeafJSON

// ServeCoordinatorAdmin starts the coordinator's admin HTTP endpoint:
// three-layer Prometheus /metrics (the coordinator's own counters, the
// coordinator-side imps_coord_leaf_* fleet series, and each leaf's stats
// and health rolled up under a leaf="name" label), a fleet-aware /healthz
// (ok, degraded or down, one line per leaf), the /fleet JSON document
// imptop polls, a JSON /trace fleet-trace dump, and the pprof suite. Like
// ServeAdmin the endpoint is unauthenticated — bind it to loopback or an
// operations network.
func ServeCoordinatorAdmin(addr string, co *Coordinator) (*AdminServer, error) {
	return obs.ListenFleetAdmin(addr, co)
}

// ServeCoordinator starts a wire front-end for co on addr. Closing the
// front-end leaves the coordinator running — callers own its shutdown.
func ServeCoordinator(co *Coordinator, addr string) (*CoordinatorFrontend, error) {
	return coord.Serve(co, addr)
}

// ErrUDPDataDropped is reported by the UDP ingest lane's Flush when
// batches that were delivered and consumed could not be decoded and
// applied by the server — loss that retransmission cannot repair. The
// wrapped error carries the dropped-batch count; unwrap with errors.Is.
var ErrUDPDataDropped = client.ErrUDPDataDropped

// Leaf liveness states reported in LeafStatus.State.
const (
	LeafUp         = proto.LeafUp         // serving and routed to
	LeafDown       = proto.LeafDown       // probes fail; traffic queues in its journal
	LeafRecovering = proto.LeafRecovering // being re-admitted from its checkpoint
)
