package query

import (
	"reflect"
	"testing"

	"implicate/internal/imps"
)

func TestParsePlainDistinct(t *testing.T) {
	q, err := Parse("SELECT COUNT(DISTINCT Source) FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != CountDistinct || len(q.A) != 1 || q.A[0] != "Source" || q.From != "traffic" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseGeneralQuery(t *testing.T) {
	q, err := Parse(`
		SELECT COUNT(DISTINCT Destination) FROM traffic
		WHERE Destination IMPLIES Source
		WITH SUPPORT >= 50, MULTIPLICITY <= 5, CONFIDENCE >= 0.8 TOP 2`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != CountImplications {
		t.Fatalf("mode = %v", q.Mode)
	}
	want := imps.Conditions{MaxMultiplicity: 5, MinSupport: 50, TopC: 2, MinTopConfidence: 0.8}
	if q.Cond != want {
		t.Fatalf("cond = %+v, want %+v", q.Cond, want)
	}
	if !reflect.DeepEqual(q.B, []string{"Source"}) {
		t.Fatalf("B = %v", q.B)
	}
}

func TestParseMultiAttribute(t *testing.T) {
	q, err := Parse(`SELECT COUNT(DISTINCT A, B) FROM s WHERE A, B IMPLIES E, G`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.A, []string{"A", "B"}) || !reflect.DeepEqual(q.B, []string{"E", "G"}) {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseComplement(t *testing.T) {
	q, err := Parse(`SELECT COUNT(DISTINCT Source) FROM s WHERE Source NOT IMPLIES Service`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != CountNonImplications {
		t.Fatalf("mode = %v", q.Mode)
	}
}

func TestParseConditional(t *testing.T) {
	// Table 2: "how many sources contact only one destination during the
	// morning".
	q, err := Parse(`
		SELECT COUNT(DISTINCT Source) FROM traffic
		WHERE Source IMPLIES Destination
		AND Time = 'Morning'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || q.Filters[0] != (Filter{Attr: "Time", Value: "Morning"}) {
		t.Fatalf("filters = %+v", q.Filters)
	}
	q2 := MustParse(`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination AND Service != 'WWW'`)
	if len(q2.Filters) != 1 || !q2.Filters[0].Negate {
		t.Fatalf("negated filter = %+v", q2.Filters)
	}
}

func TestParseCompound(t *testing.T) {
	// Table 2: "how many sources contact only one target per service".
	q, err := Parse(`
		SELECT COUNT(DISTINCT Source) FROM traffic
		WHERE Source IMPLIES Destination
		GROUP BY Service`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.GroupBy, []string{"Service"}) {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
}

func TestParseWindow(t *testing.T) {
	q, err := Parse(`
		SELECT COUNT(DISTINCT Destination) FROM traffic
		WHERE Destination IMPLIES Source
		WITH CONFIDENCE >= 0.9 TOP 1, SUPPORT >= 10
		WINDOW 100000 EVERY 10000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 100000 || q.Every != 10000 {
		t.Fatalf("window = %d every %d", q.Window, q.Every)
	}
	if q.Cond.MinTopConfidence != 0.9 || q.Cond.MinSupport != 10 {
		t.Fatalf("cond = %+v", q.Cond)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select count(distinct x) from s where x implies y with support >= 2`); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT COUNT(DISTINCT) FROM s",
		"SELECT COUNT(DISTINCT a FROM s",
		"SELECT COUNT(DISTINCT a) FROM s WHERE b IMPLIES c",      // lhs mismatch
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES",        // missing rhs
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b WITH", // dangling WITH
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b WITH BOGUS >= 1",
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b AND c",  // dangling filter
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b WINDOW", // missing size
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b trailing junk",
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b WITH SUPPORT >= 'x'",
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b AND t = 'unterminated",
		"SELECT COUNT(DISTINCT a) FROM s ;;;",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestParseRoundTripThroughNormalize(t *testing.T) {
	// The paper's Table 2 examples, rendered in the dialect, must all parse
	// and normalize against the Table 1 schema.
	examples := []string{
		`SELECT COUNT(DISTINCT Source) FROM traffic`,
		`SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source`,
		`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination WITH MULTIPLICITY <= 10`,
		`SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source WITH CONFIDENCE >= 0.8 TOP 1`,
		`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source NOT IMPLIES Service`,
		`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination AND Time = 'Morning'`,
		`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination GROUP BY Service`,
		`SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source
		   WITH CONFIDENCE >= 0.9 TOP 1, SUPPORT >= 10, MULTIPLICITY <= 10 AND Service = 'P2P' WINDOW 3600 EVERY 360`,
	}
	schema := mustSchema(t)
	for _, sql := range examples {
		q, err := Parse(sql)
		if err != nil {
			t.Errorf("parse %q: %v", sql, err)
			continue
		}
		if err := q.Normalize(schema); err != nil {
			t.Errorf("normalize %q: %v", sql, err)
		}
	}
}
