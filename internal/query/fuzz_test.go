package query

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// renders and re-parses (a weak round-trip: the re-parse must succeed and
// re-render identically).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(DISTINCT a) FROM s",
		"SELECT COUNT(DISTINCT a, b) FROM s WHERE a, b IMPLIES c",
		"SELECT COUNT(DISTINCT a) FROM s WHERE a NOT IMPLIES b AND c = 'x' GROUP BY d",
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b WITH SUPPORT >= 5, MULTIPLICITY <= 3, CONFIDENCE >= 0.8 TOP 2 WINDOW 100 EVERY 10",
		"SELECT AVG(MULTIPLICITY(a)) FROM s WHERE a IMPLIES b",
		"select count(distinct x) from y where x implies z",
		"SELECT COUNT(DISTINCT ☃) FROM s",
		"SELECT COUNT(DISTINCT a) FROM s WHERE a IMPLIES b WITH SUPPORT >= 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted input %q rendered to unparseable %q: %v", input, rendered, err)
		}
		if r2 := q2.String(); r2 != rendered {
			t.Fatalf("render not idempotent: %q -> %q", rendered, r2)
		}
	})
}

// FuzzLex checks the tokenizer never panics and consumes every rune.
func FuzzLex(f *testing.F) {
	f.Add("SELECT COUNT(DISTINCT a) FROM s")
	f.Add("'unterminated")
	f.Add("a != b >= 0.5 <= (,)")
	f.Add(strings.Repeat("(", 1000))
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		for _, tok := range toks {
			if tok.kind == "" {
				t.Fatalf("empty token kind for input %q", input)
			}
		}
	})
}
