// The per-connection fast wire path (DESIGN.md §12). Each TCP connection
// runs two goroutines: a reader that decodes frames with a reusable
// FrameReader, decodes and plans ingest batches in place, and enqueues
// them; and a writer that drains a bounded reply channel, coalesces
// pending replies into one scratch buffer, and flushes them with a single
// vectored write. Steady-state ingest therefore costs zero allocations
// per frame on both directions of the wire, and acknowledgements for
// pipelined batches share syscalls instead of paying one each.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"time"

	"implicate/internal/obs"
	"implicate/internal/pipeline"
	"implicate/internal/proto"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
	"implicate/internal/tenant"
)

const (
	// replyQueueDepth bounds the per-connection reply channel. A full
	// channel blocks the reader — backpressure, not loss; the writer is
	// strictly faster than the reader in steady state so depth beyond the
	// pipelining window is never used.
	replyQueueDepth = 256
	// maxFlushReplies caps how many replies one vectored write coalesces,
	// bounding scratch growth and per-flush latency.
	maxFlushReplies = 64
	// inlineReplyLimit is the payload size above which a reply is vectored
	// (header in scratch, payload as its own iovec) instead of copied into
	// scratch. Acks and busy replies are far below it; stats, health and
	// trace dumps are above.
	inlineReplyLimit = 4096
)

// replyKind selects the writer-side encoding of one reply.
type replyKind uint8

const (
	// replyAck is an ingest acknowledgement: TOK carrying IngestAck{n},
	// encoded allocation-free into the connection scratch.
	replyAck replyKind = iota
	// replyBusy is a backpressure reply: TBusy carrying the server's
	// RetryAfter hint, also encoded allocation-free.
	replyBusy
	// replyGeneric carries a pre-encoded payload from a control-plane
	// handler (query results, stats, errors, merge acks).
	replyGeneric
)

// reply is one queued response. Ack and busy replies carry scalars, not
// payload bytes — the writer encodes them into its scratch, which is the
// bugfix for the fresh-frame-per-ack allocation the old path made.
type reply struct {
	kind    replyKind
	id      uint64
	n       int64 // replyAck: acknowledged tuple count
	t       proto.Type
	payload []byte // replyGeneric only; owned by the writer once enqueued
}

// connState is the per-connection session: which tenant requests resolve
// against, and whether a TAuth frame has pinned it. Only the reader
// goroutine touches it, so it needs no lock. Every connection starts on
// the implicit default tenant — a client that never authenticates sees
// exactly the single-tenant server.
type connState struct {
	tenant *tenant.Tenant
	authed bool
}

func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(c)
	replies := make(chan reply, replyQueueDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.connWriter(c, replies)
	}()
	cs := &connState{tenant: s.def}
	fr := proto.NewFrameReader(c)
	for {
		f, err := fr.Next()
		if err != nil {
			if err != io.EOF && !s.draining.Load() {
				s.cfg.Logf("server: dropping %s: %v", c.RemoteAddr(), err)
			}
			break
		}
		// f.Payload aliases the FrameReader's buffer: every handler below
		// finishes with it (or copies out of it) before the next Next call.
		if f.Type == proto.TIngest {
			s.handleIngestFast(f, cs, replies)
			continue
		}
		resp := s.handle(f, cs)
		replies <- reply{kind: replyGeneric, id: resp.ID, t: resp.Type, payload: resp.Payload}
	}
	close(replies)
	<-writerDone
}

// handleIngestFast is the reader-side ingest path: lease a recycled batch
// from the tenant's pool, decode straight from the frame buffer into its
// arena, plan on this goroutine, enqueue, and hand the reply to the
// writer. In steady state the only per-frame allocation left is the
// batch's record string (which the decoded keys alias); every other buffer
// — tuples, partition buckets, tasks — is the leased batch's warm memory,
// returned to the pool when the batch's last statement applies.
func (s *Server) handleIngestFast(f proto.Frame, cs *connState, out chan<- reply) {
	start := time.Now()
	// The inbound trace context (zero on untraced frames) parents every
	// span this batch produces — plan, dispatch, apply, and the RPC span —
	// so a coordinator's delivery span adopts the whole leaf-side story.
	link := obs.Link{Trace: f.TC.Trace, Parent: f.TC.Parent}
	var r reply
	b := cs.tenant.Pool.NewBatch()
	tuples, err := s.decodeBatch(b.Arena(), f.Payload)
	switch {
	case err != nil:
		b.Release()
		r = reply{kind: replyGeneric, id: f.ID, t: proto.TError, payload: proto.EncodeError(fmt.Sprintf("ingest: %v", err))}
	case s.draining.Load():
		b.Release()
		r = reply{kind: replyGeneric, id: f.ID, t: proto.TError, payload: proto.EncodeError("ingest: server is shutting down")}
	default:
		r = s.admitIngest(cs.tenant, f.ID, b, tuples, link, start)
	}
	// One clock read serves both the latency histogram and the RPC span,
	// mirroring the control-plane handler.
	dur := time.Since(start)
	s.tel.Observe(telemetry.RPCIngest, dur)
	s.tracer.RecordLinked(link, obs.SpanRPC, int(telemetry.RPCIngest), 0, start, dur)
	out <- r
}

// admitIngest runs the tenant admission sequence for one decoded batch:
// quota check first (a refusal is a TQuota reply carrying the retry hint,
// charged before planning so no partial state exists anywhere), then plan,
// then the lane offer — blocking or busy-refusing per Config.BlockOnFull.
// Every refusal path releases the leased batch; a successful enqueue
// transfers ownership to the dispatcher, so nothing here touches b after
// the lane accepts it.
func (s *Server) admitIngest(t *tenant.Tenant, id uint64, b *pipeline.Batch, tuples []stream.Tuple, link obs.Link, now time.Time) reply {
	n := int64(len(tuples))
	if q := t.Admit(len(tuples), now); q != nil {
		b.Release()
		payload := proto.Quota{Msg: q.Msg, RetryAfter: q.RetryAfter}.Encode()
		return reply{kind: replyGeneric, id: id, t: proto.TQuota, payload: payload}
	}
	s.planInto(t, b, tuples, link)
	var depth int
	var ok bool
	if s.cfg.BlockOnFull {
		// Blocking backpressure: the reader waits for lane room, so
		// pipelined frames on this connection are never refused and never
		// reordered by a re-send (the dispatcher keeps draining, so the
		// wait always ends, including during shutdown). The wait holds up
		// this tenant's producers only.
		depth, ok = t.Lane.Enqueue(b)
		if !ok {
			b.Release()
			return reply{kind: replyGeneric, id: id, t: proto.TError, payload: proto.EncodeError("ingest: tenant dropped or server shutting down")}
		}
	} else if depth, ok = t.Lane.TryEnqueue(b); !ok {
		b.Release()
		if t.Lane.Closed() {
			return reply{kind: replyGeneric, id: id, t: proto.TError, payload: proto.EncodeError("ingest: tenant dropped or server shutting down")}
		}
		t.AddRejected()
		s.tel.AddRejectedBatch()
		return reply{kind: replyBusy, id: id}
	}
	t.AddBatch()
	s.tel.AddBatch()
	s.tel.ObserveQueueDepth(depth)
	return reply{kind: replyAck, id: id, n: n}
}

// decodeBatch parses an ingest payload — a complete binary stream (header
// included) — validating the schema and the batch size. The fast path
// compares the header bytes against the server schema's canonical encoding
// and decodes the records into the leased batch's arena (one allocation
// per batch, the record string); anything else takes the slow path, whose
// job is the precise error message.
func (s *Server) decodeBatch(ar *stream.RecordArena, payload []byte) ([]stream.Tuple, error) {
	if bytes.HasPrefix(payload, s.hdr) {
		return ar.DecodeBinaryRecords(payload[len(s.hdr):], s.arity, s.cfg.MaxBatchTuples)
	}
	return s.decodeBatchSlow(payload)
}

// planInto runs the pure planning stage — filters, projections, partition
// hashing (once, forwarded to the estimators) — on the caller's goroutine
// against the tenant's pool, into the leased batch's recycled buffers.
// Connection readers and the UDP lane both call it; the dispatcher never
// does. The link (zero when the inbound frame carried no trace context)
// parents the plan span here and rides the batch to parent its dispatch
// and apply spans downstream.
func (s *Server) planInto(t *tenant.Tenant, b *pipeline.Batch, tuples []stream.Tuple, link obs.Link) *pipeline.Batch {
	var planStart time.Time
	if s.tracer != nil {
		planStart = time.Now()
		b.SetLink(link)
	}
	t.Pool.PlanInto(b, tuples)
	if s.tracer != nil {
		s.tracer.SpanLinked(link, obs.SpanPlan, -1, int64(len(tuples)), planStart)
	}
	return b
}

// enqueueWait enqueues a planned batch on the tenant's lane, blocking
// until it has room — the UDP lane's flow control (its socket buffer
// absorbs the wait). False means the lane closed before the batch was
// admitted; the batch was not applied.
func (s *Server) enqueueWait(t *tenant.Tenant, b *pipeline.Batch) bool {
	depth, ok := t.Lane.Enqueue(b)
	if !ok {
		return false
	}
	t.AddBatch()
	s.tel.AddBatch()
	s.tel.ObserveQueueDepth(depth)
	return true
}

// connWriter drains the reply channel, coalescing every reply available
// (up to maxFlushReplies) into one vectored write. Small replies are
// encoded back to back in a reusable scratch buffer; large payloads join
// the iovec uncopied. It exits when the channel closes; on a write error
// it closes the connection to unblock the reader and keeps draining so the
// reader never wedges on a full channel.
func (s *Server) connWriter(nc net.Conn, replies <-chan reply) {
	var (
		scratch []byte
		bufs    net.Buffers
		dead    bool
	)
	flush := func(seg int) {
		if len(scratch) > seg {
			bufs = append(bufs, scratch[seg:])
		}
		if len(bufs) == 0 {
			return
		}
		// WriteTo consumes its receiver, so hand it a copy of the slice
		// header; bufs keeps its backing array for the next round.
		v := bufs
		if _, err := v.WriteTo(nc); err != nil {
			dead = true
			nc.Close()
			if !s.draining.Load() {
				s.cfg.Logf("server: write to %s: %v", nc.RemoteAddr(), err)
			}
		}
	}
	for {
		r, ok := <-replies
		if !ok {
			return
		}
		if dead {
			continue
		}
		scratch, bufs = scratch[:0], bufs[:0]
		seg := 0 // start of the scratch segment not yet pushed to bufs
		scratch, seg = s.appendReply(scratch, &bufs, seg, r)
		for n := 1; n < maxFlushReplies; n++ {
			select {
			case r, ok = <-replies:
				if !ok {
					flush(seg)
					return
				}
				scratch, seg = s.appendReply(scratch, &bufs, seg, r)
			default:
				n = maxFlushReplies
			}
		}
		flush(seg)
	}
}

// appendReply encodes one reply: small ones into scratch, large payloads
// as their own iovec behind their header. Appending to scratch may move
// its backing array; segments already pushed to bufs stay valid — they
// reference the abandoned array, whose bytes are never modified again.
func (s *Server) appendReply(scratch []byte, bufs *net.Buffers, seg int, r reply) ([]byte, int) {
	switch r.kind {
	case replyAck:
		scratch, _ = proto.AppendFrameFunc(scratch, proto.TOK, r.id, func(d []byte) []byte {
			return proto.IngestAck{Tuples: r.n}.AppendTo(d)
		})
	case replyBusy:
		scratch, _ = proto.AppendFrameFunc(scratch, proto.TBusy, r.id, func(d []byte) []byte {
			return proto.Busy{RetryAfter: s.cfg.RetryAfter}.AppendTo(d)
		})
	default:
		if len(r.payload) >= inlineReplyLimit {
			ext, err := proto.AppendFrameHeader(scratch, r.t, r.id, r.payload)
			if err != nil {
				// A handler produced a payload no frame can carry; tell the
				// client that much instead of wedging the connection.
				ext, _ = proto.AppendFrame(scratch, errorFrame(r.id, "reply exceeds the frame size limit"))
				return ext, seg
			}
			scratch = ext
			*bufs = append(*bufs, scratch[seg:], r.payload)
			return scratch, len(scratch)
		}
		// Payloads under inlineReplyLimit are far below MaxFrame; the
		// error path is unreachable.
		scratch, _ = proto.AppendFrame(scratch, proto.Frame{Type: r.t, ID: r.id, Payload: r.payload})
	}
	return scratch, seg
}
