package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"implicate/internal/imps"
)

// Binary serialization for sketches, so constrained nodes can checkpoint
// their state or ship it upstream for merging (§2's distributed
// aggregation). The format is versioned and self-describing; a sketch
// restored with UnmarshalBinary continues streaming exactly where it left
// off.

const marshalMagic = "NIPS\x01"

// ErrCorrupt is returned by UnmarshalBinary for malformed input.
var ErrCorrupt = errors.New("core: corrupt sketch encoding")

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64    { return int64(d.u64()) }
func (d *decoder) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *decoder) boolean() bool { return d.u8() != 0 }

// MarshalBinary encodes the complete sketch state.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 4096)}
	e.buf = append(e.buf, marshalMagic...)

	e.u32(uint32(s.cond.MaxMultiplicity))
	e.i64(s.cond.MinSupport)
	e.u32(uint32(s.cond.TopC))
	e.f64(s.cond.MinTopConfidence)

	e.u32(uint32(s.opts.Bitmaps))
	e.u32(uint32(s.opts.FringeSize))
	e.bool(s.opts.Unbounded)
	e.u32(uint32(s.opts.Slack))
	e.u64(s.opts.Seed)

	e.i64(s.tuples)
	e.i64(int64(s.peak))

	for bi := range s.bms {
		b := &s.bms[bi]
		e.i64(int64(b.lo))
		e.i64(int64(b.hi))
		e.i64(int64(b.overflows))
		e.u64(packBits(&b.value))
		e.u64(packBits(&b.supped))
		e.u64(packBits(&b.touched))
		e.u64(packBits(&b.dead))
		ncells := 0
		for _, c := range b.cells {
			if c != nil {
				ncells++
			}
		}
		e.u32(uint32(ncells))
		for ci, c := range b.cells {
			if c == nil {
				continue
			}
			e.u8(uint8(ci))
			e.bool(c.suppOnly)
			e.u32(uint32(len(c.items)))
			for j := range c.items {
				it := &c.items[j]
				e.u64(it.ah)
				st := &it.st
				switch {
				case st.excluded:
					e.u8(2) // tombstone
					continue
				case st.doomed:
					e.u8(1)
				default:
					e.u8(0)
				}
				e.i64(st.supp)
				if st.doomed || st.perB == nil {
					e.u32(0)
					continue
				}
				e.u32(uint32(len(st.perB)))
				for _, pe := range st.perB {
					e.u64(pe.h)
					e.i64(pe.n)
				}
			}
		}
	}
	return e.buf, nil
}

func packBits(bits *[Levels]bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func unpackBits(v uint64, bits *[Levels]bool) {
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
}

// UnmarshalSketch decodes a sketch previously encoded with MarshalBinary.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	if len(data) < len(marshalMagic) || string(data[:len(marshalMagic)]) != marshalMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d := &decoder{buf: data, off: len(marshalMagic)}

	var cond imps.Conditions
	cond.MaxMultiplicity = int(d.u32())
	cond.MinSupport = d.i64()
	cond.TopC = int(d.u32())
	cond.MinTopConfidence = d.f64()
	if cond.MaxMultiplicity > 1<<24 || cond.TopC > 1<<24 {
		return nil, ErrCorrupt
	}

	var opts Options
	opts.Bitmaps = int(d.u32())
	opts.FringeSize = int(d.u32())
	opts.Unbounded = d.boolean()
	opts.Slack = int(d.u32())
	opts.Seed = d.u64()
	if d.err != nil {
		return nil, d.err
	}

	s, err := NewSketch(cond, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.tuples = d.i64()
	s.peak = int(d.i64())
	if s.tuples < 0 || s.peak < 0 {
		return nil, ErrCorrupt
	}

	for bi := range s.bms {
		b := &s.bms[bi]
		b.lo = int(d.i64())
		b.hi = int(d.i64())
		b.overflows = int(d.i64())
		if d.err != nil || b.lo < 0 || b.lo > Levels || b.hi < -1 || b.hi >= Levels {
			return nil, ErrCorrupt
		}
		unpackBits(d.u64(), &b.value)
		unpackBits(d.u64(), &b.supped)
		unpackBits(d.u64(), &b.touched)
		unpackBits(d.u64(), &b.dead)
		ncells := int(d.u32())
		if d.err != nil || ncells > Levels {
			return nil, ErrCorrupt
		}
		for k := 0; k < ncells; k++ {
			ci := int(d.u8())
			if d.err != nil || ci >= Levels || b.cells[ci] != nil {
				return nil, ErrCorrupt
			}
			c := &cell{suppOnly: d.boolean()}
			nitems := int(d.u32())
			// Every item occupies at least 9 encoded bytes; reject length
			// fields the remaining input cannot possibly satisfy before
			// sizing any allocation by them.
			if d.err != nil || nitems < 0 || nitems > (len(d.buf)-d.off)/9 {
				return nil, ErrCorrupt
			}
			c.items = make([]item, 0, nitems)
			for itn := 0; itn < nitems; itn++ {
				ah := d.u64()
				if c.find(ah) >= 0 {
					return nil, ErrCorrupt
				}
				switch kind := d.u8(); kind {
				case 2:
					c.items = append(c.items, item{ah: ah, st: aState{excluded: true}})
				case 0, 1:
					st := aState{doomed: kind == 1, supp: d.i64()}
					npairs := int(d.u32())
					if d.err != nil || npairs < 0 || npairs > (len(d.buf)-d.off)/16 {
						return nil, ErrCorrupt
					}
					if npairs > 0 {
						st.perB = make(pairSet, 0, npairs)
						for p := 0; p < npairs; p++ {
							bh := d.u64()
							n := d.i64()
							if st.perB.find(bh) >= 0 {
								return nil, ErrCorrupt
							}
							st.perB.add(bh, n)
						}
					}
					c.items = append(c.items, item{ah: ah, st: st})
				default:
					return nil, ErrCorrupt
				}
				if d.err != nil {
					return nil, d.err
				}
			}
			b.cells[ci] = c
			s.recountCell(c)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-d.off)
	}
	s.recountEntries()
	if s.peak < s.entries {
		s.peak = s.entries
	}
	return s, nil
}
