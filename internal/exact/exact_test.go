package exact

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"implicate/internal/imps"
)

func cond(k int, tau int64, c int, psi float64) imps.Conditions {
	return imps.Conditions{MaxMultiplicity: k, MinSupport: tau, TopC: c, MinTopConfidence: psi}
}

func TestNewCounterValidation(t *testing.T) {
	if _, err := NewCounter(imps.Conditions{}); err == nil {
		t.Fatal("zero conditions accepted")
	}
	if _, err := NewCounter(cond(2, 1, 1, 0.5)); err != nil {
		t.Fatalf("valid conditions rejected: %v", err)
	}
}

// TestPaperSection312 reproduces the worked example of §3.1.2 on the Table 1
// network stream: services used by at most two sources 80% of the time, with
// maximum multiplicity five and minimum support one. WWW and FTP qualify;
// P2P fails with top-2 confidence 75%.
func TestPaperSection312(t *testing.T) {
	// (Service, Source) pairs of Table 1, in row order: three WWW tuples
	// (all S1), one FTP (S2), four P2P (S2, S1, S1, S3).
	tuples := [][2]string{
		{"WWW", "S1"}, {"FTP", "S2"}, {"WWW", "S1"}, {"P2P", "S2"},
		{"P2P", "S1"}, {"WWW", "S1"}, {"P2P", "S1"}, {"P2P", "S3"},
	}
	c := MustCounter(cond(5, 1, 2, 0.8))
	for _, tp := range tuples {
		c.Add(tp[0], tp[1])
	}
	if got := c.ImplicationCount(); got != 2 {
		t.Fatalf("implication count = %v, want 2 (WWW, FTP)", got)
	}
	if !c.Implies("WWW") || !c.Implies("FTP") || c.Implies("P2P") {
		t.Fatalf("membership wrong: WWW=%v FTP=%v P2P=%v",
			c.Implies("WWW"), c.Implies("FTP"), c.Implies("P2P"))
	}
	// With the threshold lowered to 75% P2P qualifies (§3.1.2): top-2
	// confidence of P2P is (2+1)/4 = 75%.
	c2 := MustCounter(cond(5, 1, 2, 0.75))
	for _, tp := range tuples {
		c2.Add(tp[0], tp[1])
	}
	if got := c2.ImplicationCount(); got != 3 {
		t.Fatalf("implication count at ψ=0.75 = %v, want 3", got)
	}
	// Raising the minimum support to two drops FTP (§3.1.2).
	c3 := MustCounter(cond(5, 2, 2, 0.8))
	for _, tp := range tuples {
		c3.Add(tp[0], tp[1])
	}
	if got := c3.ImplicationCount(); got != 1 {
		t.Fatalf("implication count at τ=2 = %v, want 1 (WWW)", got)
	}
	if c3.Implies("FTP") {
		t.Fatal("FTP passed despite support 1 < τ=2")
	}
}

// TestPaperTable2OneToOne reproduces the destination→source example of §1:
// destinations contacted by a single source.
func TestPaperTable2OneToOne(t *testing.T) {
	// (Destination, Source) pairs of Table 1.
	tuples := [][2]string{
		{"D2", "S1"}, {"D1", "S2"}, {"D3", "S1"}, {"D1", "S2"},
		{"D3", "S1"}, {"D3", "S1"}, {"D3", "S1"}, {"D3", "S3"},
	}
	c := MustCounter(cond(1, 1, 1, 1.0))
	for _, tp := range tuples {
		c.Add(tp[0], tp[1])
	}
	// D2→S1 and D1→S2 hold exactly; D3 is contacted by S1 and S3.
	if got := c.ImplicationCount(); got != 2 {
		t.Fatalf("one-to-one count = %v, want 2", got)
	}
	// With 80% tolerance D3 qualifies too: S1 contacts it 4/5 of the time.
	c2 := MustCounter(cond(5, 1, 1, 0.8))
	for _, tp := range tuples {
		c2.Add(tp[0], tp[1])
	}
	if got := c2.ImplicationCount(); got != 3 {
		t.Fatalf("one-to-one count with noise = %v, want 3", got)
	}
}

func TestCountsAndAccessors(t *testing.T) {
	c := MustCounter(cond(2, 3, 1, 0.9))
	if c.ImplicationCount() != 0 || c.Tuples() != 0 || c.MemEntries() != 0 {
		t.Fatal("fresh counter not empty")
	}
	c.Add("a", "x")
	c.Add("a", "x")
	if c.SupportedDistinct() != 0 {
		t.Fatal("supported before reaching τ")
	}
	if c.Support("a") != 2 || c.Support("zzz") != 0 {
		t.Fatal("Support accessor wrong")
	}
	c.Add("a", "x")
	if c.SupportedDistinct() != 1 || c.ImplicationCount() != 1 {
		t.Fatalf("after τ: supported=%v implications=%v", c.SupportedDistinct(), c.ImplicationCount())
	}
	if c.Multiplicity("a") != 1 {
		t.Fatalf("Multiplicity = %d, want 1", c.Multiplicity("a"))
	}
	if got := c.Implicating(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Implicating = %v", got)
	}
	if c.DistinctCount() != 1 {
		t.Fatalf("DistinctCount = %v", c.DistinctCount())
	}
}

func TestViolationFreesMemory(t *testing.T) {
	c := MustCounter(cond(1, 2, 1, 0.9))
	c.Add("a", "x")
	before := c.MemEntries()
	c.Add("a", "y") // multiplicity 2 > K=1, supp 2 = τ → violation
	if c.NonImplicationCount() != 1 {
		t.Fatalf("~S = %v, want 1", c.NonImplicationCount())
	}
	if c.Multiplicity("a") != -1 {
		t.Fatalf("Multiplicity of excluded itemset = %d, want -1", c.Multiplicity("a"))
	}
	if c.MemEntries() >= before+1 {
		t.Fatalf("pair counters not freed: %d entries (before %d)", c.MemEntries(), before)
	}
	// Support keeps counting after exclusion.
	c.Add("a", "z")
	if c.Support("a") != 3 {
		t.Fatalf("support stopped: %d", c.Support("a"))
	}
}

// TestAgainstBruteForce replays random streams through the counter and a
// straightforward quadratic re-evaluation, checking final counts agree.
// The brute force recomputes, after each prefix, which itemsets violated at
// that point, accumulating the "once out, forever out" set.
func TestAgainstBruteForce(t *testing.T) {
	type tuple struct{ a, b string }
	eval := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cnd := cond(1+rng.Intn(3), int64(1+rng.Intn(4)), 1, []float64{0.5, 0.75, 1.0}[rng.Intn(3)])
		if cnd.TopC > cnd.MaxMultiplicity {
			cnd.TopC = cnd.MaxMultiplicity
		}
		n := 60 + rng.Intn(120)
		stream := make([]tuple, n)
		for i := range stream {
			stream[i] = tuple{fmt.Sprintf("a%d", rng.Intn(8)), fmt.Sprintf("b%d", rng.Intn(5))}
		}

		c := MustCounter(cnd)
		for _, tp := range stream {
			c.Add(tp.a, tp.b)
		}

		// Brute force with full recomputation per prefix.
		out := map[string]bool{}
		supp := map[string]int64{}
		pairs := map[string]map[string]int64{}
		for _, tp := range stream {
			supp[tp.a]++
			if pairs[tp.a] == nil {
				pairs[tp.a] = map[string]int64{}
			}
			if !out[tp.a] {
				pairs[tp.a][tp.b]++
			}
			if supp[tp.a] >= cnd.MinSupport && !out[tp.a] {
				var counts []int64
				for _, v := range pairs[tp.a] {
					counts = append(counts, v)
				}
				if len(pairs[tp.a]) > cnd.MaxMultiplicity ||
					imps.TopConfidence(counts, cnd.TopC, supp[tp.a]) < cnd.MinTopConfidence {
					out[tp.a] = true
				}
			}
		}
		var wantImp, wantNon, wantSup float64
		for a, s := range supp {
			if s >= cnd.MinSupport {
				wantSup++
				if out[a] {
					wantNon++
				} else {
					wantImp++
				}
			}
		}
		return c.ImplicationCount() == wantImp &&
			c.NonImplicationCount() == wantNon &&
			c.SupportedDistinct() == wantSup
	}
	f := func(seed int64) bool { return eval(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantSums(t *testing.T) {
	c := MustCounter(cond(2, 2, 1, 0.8))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		c.Add(fmt.Sprintf("a%d", rng.Intn(300)), fmt.Sprintf("b%d", rng.Intn(10)))
		if i%500 == 0 {
			if c.ImplicationCount()+c.NonImplicationCount() != c.SupportedDistinct() {
				t.Fatalf("S + ~S != F0sup at tuple %d", i)
			}
			if c.SupportedDistinct() > c.DistinctCount() {
				t.Fatalf("F0sup > F0 at tuple %d", i)
			}
		}
	}
}
