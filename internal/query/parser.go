package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the SQL-like implication-query dialect of §3:
//
//	SELECT COUNT(DISTINCT attr[, attr...]) FROM name
//	[WHERE attr[, attr...] [NOT] IMPLIES attr[, attr...]
//	  [AND attr = 'value' | AND attr != 'value' ...]
//	  [GROUP BY attr[, attr...]]
//	  [WITH SUPPORT >= n [, MULTIPLICITY <= k] [, CONFIDENCE >= x TOP c]]
//	  [WINDOW n [EVERY m]]]
//
// Omitting the WHERE clause yields a plain distinct count. The WHERE
// left-hand side must repeat the SELECT attribute list, exactly as the
// paper writes the general query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return q, nil
}

// MustParse is Parse panicking on error, for statically known queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type token struct {
	kind string // "ident", "string", "number", or the symbol itself
	text string
}

func lex(input string) ([]token, error) {
	var toks []token
	rs := []rune(input)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'':
			j := i + 1
			for j < len(rs) && rs[j] != '\'' {
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{"string", string(rs[i+1 : j])})
			i = j + 1
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{"ident", string(rs[i:j])})
			i = j
		case unicode.IsDigit(r) || r == '.':
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.') {
				j++
			}
			toks = append(toks, token{"number", string(rs[i:j])})
			i = j
		case r == '!' && i+1 < len(rs) && rs[i+1] == '=':
			toks = append(toks, token{"!=", "!="})
			i += 2
		case r == '>' && i+1 < len(rs) && rs[i+1] == '=':
			toks = append(toks, token{">=", ">="})
			i += 2
		case r == '<' && i+1 < len(rs) && rs[i+1] == '=':
			toks = append(toks, token{"<=", "<="})
			i += 2
		case strings.ContainsRune("(),=", r):
			toks = append(toks, token{string(r), string(r)})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{"eof", ""}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if t := p.next(); t.kind != sym {
		return fmt.Errorf("expected %q, got %q", sym, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != "ident" {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) attrList() ([]string, error) {
	var attrs []string
	for {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
		if p.peek().kind != "," {
			return attrs, nil
		}
		p.next()
	}
}

func (p *parser) intLit() (int64, error) {
	t := p.next()
	if t.kind != "number" {
		return 0, fmt.Errorf("expected number, got %q", t.text)
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) floatLit() (float64, error) {
	t := p.next()
	if t.kind != "number" {
		return 0, fmt.Errorf("expected number, got %q", t.text)
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", t.text)
	}
	return f, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	avg := false
	switch {
	case p.keyword("COUNT"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("DISTINCT"); err != nil {
			return nil, err
		}
	case p.keyword("AVG"):
		avg = true
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("MULTIPLICITY"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("expected COUNT or AVG, got %q", p.peek().text)
	}
	var err error
	if q.A, err = p.attrList(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if avg {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if q.From, err = p.ident(); err != nil {
		return nil, err
	}

	if !p.keyword("WHERE") {
		if avg {
			return nil, fmt.Errorf("AVG(MULTIPLICITY(...)) requires a WHERE ... IMPLIES clause")
		}
		q.Mode = CountDistinct
		return q, p.expectEOF()
	}

	lhs, err := p.attrList()
	if err != nil {
		return nil, err
	}
	if strings.Join(lhs, ",") != strings.Join(q.A, ",") {
		return nil, fmt.Errorf("the IMPLIES left-hand side %v must repeat the SELECT list %v", lhs, q.A)
	}
	switch {
	case p.keyword("NOT"):
		if avg {
			return nil, fmt.Errorf("AVG(MULTIPLICITY(...)) cannot be combined with NOT IMPLIES")
		}
		q.Mode = CountNonImplications
	case avg:
		q.Mode = AvgMultiplicity
	default:
		q.Mode = CountImplications
	}
	if err := p.expectKeyword("IMPLIES"); err != nil {
		return nil, err
	}
	if q.B, err = p.attrList(); err != nil {
		return nil, err
	}

	for {
		switch {
		case p.keyword("AND"):
			var f Filter
			if f.Attr, err = p.ident(); err != nil {
				return nil, err
			}
			switch t := p.next(); t.kind {
			case "=":
			case "!=":
				f.Negate = true
			default:
				return nil, fmt.Errorf("expected = or != after filter attribute, got %q", t.text)
			}
			t := p.next()
			if t.kind != "string" && t.kind != "ident" && t.kind != "number" {
				return nil, fmt.Errorf("expected filter value, got %q", t.text)
			}
			f.Value = t.text
			q.Filters = append(q.Filters, f)

		case p.keyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			if q.GroupBy, err = p.attrList(); err != nil {
				return nil, err
			}

		case p.keyword("WITH"):
			if err := p.parseWith(q); err != nil {
				return nil, err
			}

		case p.keyword("WINDOW"):
			if q.Window, err = p.intLit(); err != nil {
				return nil, err
			}
			if p.keyword("EVERY") {
				if q.Every, err = p.intLit(); err != nil {
					return nil, err
				}
			}

		default:
			return q, p.expectEOF()
		}
	}
}

func (p *parser) parseWith(q *Query) error {
	for {
		switch {
		case p.keyword("SUPPORT"):
			if err := p.expectSymbol(">="); err != nil {
				return err
			}
			n, err := p.intLit()
			if err != nil {
				return err
			}
			q.Cond.MinSupport = n
		case p.keyword("MULTIPLICITY"):
			if err := p.expectSymbol("<="); err != nil {
				return err
			}
			n, err := p.intLit()
			if err != nil {
				return err
			}
			q.Cond.MaxMultiplicity = int(n)
		case p.keyword("CONFIDENCE"):
			if err := p.expectSymbol(">="); err != nil {
				return err
			}
			f, err := p.floatLit()
			if err != nil {
				return err
			}
			q.Cond.MinTopConfidence = f
			if p.keyword("TOP") {
				c, err := p.intLit()
				if err != nil {
					return err
				}
				q.Cond.TopC = int(c)
			}
		default:
			return fmt.Errorf("expected SUPPORT, MULTIPLICITY or CONFIDENCE, got %q", p.peek().text)
		}
		if p.peek().kind != "," {
			return nil
		}
		p.next()
	}
}

func (p *parser) expectEOF() error {
	if t := p.peek(); t.kind != "eof" {
		return fmt.Errorf("unexpected trailing input at %q", t.text)
	}
	return nil
}
