package core

import (
	"errors"
	"fmt"
)

// ErrIncompatible is returned by Merge when the sketches were not built
// with identical conditions and options.
var ErrIncompatible = errors.New("core: sketches are not merge-compatible")

// Merge folds other into s, so that s summarizes the concatenation of both
// input streams. It supports the paper's distributed-aggregation setting
// (§2: sensor networks and router hierarchies aggregate partial statistics
// upstream): nodes sketch their local streams with identical conditions,
// options and seed, and the merged sketch answers queries over the union.
//
// Recorded non-implication events are monotone bits, so they merge
// losslessly. Tracked per-itemset counters are summed and the implication
// conditions re-evaluated on the sums; a condition violation that would
// only have been visible in a specific interleaving of the two streams
// (a transient top-confidence dip) can be missed, exactly as it would be
// had the violating tuples arrived in the merged order. Capacity rules are
// re-applied during the merge, so the memory bounds are preserved.
//
// other is left in an unspecified state and must not be used afterwards.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("%w: nil sketch", ErrIncompatible)
	}
	if s.cond != other.cond {
		return fmt.Errorf("%w: conditions %v vs %v", ErrIncompatible, s.cond, other.cond)
	}
	if s.opts != other.opts {
		return fmt.Errorf("%w: options differ", ErrIncompatible)
	}
	for i := range s.bms {
		s.mergeBitmap(&s.bms[i], &other.bms[i])
	}
	s.tuples += other.tuples
	s.recountEntries()
	return nil
}

func (s *Sketch) mergeBitmap(dst, src *bitmap) {
	// Sticky bits merge by union.
	for i := 0; i < Levels; i++ {
		dst.touched[i] = dst.touched[i] || src.touched[i]
		dst.value[i] = dst.value[i] || src.value[i]
		dst.supped[i] = dst.supped[i] || src.supped[i]
	}
	dst.overflows += src.overflows

	// The merged fringe is anchored at the merged rightmost hashed cell;
	// cells left of either side's tracked region lose full tracking.
	newHi := dst.hi
	if src.hi > newHi {
		newHi = src.hi
	}
	if newHi < 0 {
		return // both empty
	}
	newLo := s.loFor(newHi)
	if dst.hi >= 0 && dst.lo > newLo {
		newLo = dst.lo
	}
	if src.hi >= 0 && src.lo > newLo {
		newLo = src.lo
	}
	if dst.hi >= 0 {
		for j := dst.lo; j < newLo && j <= dst.hi; j++ {
			s.pushOut(dst, j)
		}
	}
	if src.hi >= 0 {
		for j := src.lo; j < newLo && j <= src.hi; j++ {
			s.pushOut(src, j)
			dst.value[j] = dst.value[j] || src.value[j]
			dst.supped[j] = dst.supped[j] || src.supped[j]
			dst.dead[j] = dst.dead[j] || src.dead[j]
		}
	}
	dst.hi, dst.lo = newHi, newLo

	for i := 0; i < Levels; i++ {
		dst.dead[i] = dst.dead[i] || src.dead[i]
		if dst.dead[i] {
			// A dead cell still owes the F0^sup reader its verdict: absorb
			// any support evidence either side gathered before dropping the
			// tracking (transient support-only state included).
			for _, c := range []*cell{dst.cells[i], src.cells[i]} {
				if c != nil && (c.nSupported > 0 || c.nDoomed > 0 || c.nExcluded > 0) {
					dst.supped[i] = true
				}
			}
			dst.cells[i] = nil
			src.cells[i] = nil
			continue
		}
		s.mergeCell(dst, i, src.cells[i])
		src.cells[i] = nil
	}
}

// mergeCell folds one source cell into dst's cell at position i.
func (s *Sketch) mergeCell(b *bitmap, i int, from *cell) {
	if from == nil || len(from.items) == 0 {
		return
	}
	c := b.cells[i]
	if c == nil {
		c = &cell{items: make([]item, 0, len(from.items)), suppOnly: i < b.lo}
		b.cells[i] = c
	}
	for fi := range from.items {
		ah, st := from.items[fi].ah, &from.items[fi].st
		if st.excluded {
			// Source tombstone: the itemset violated there; exclusion wins.
			b.value[i] = true
			b.supped[i] = true
			if idx := c.find(ah); idx >= 0 {
				cur := &c.items[idx].st
				cur.excluded = true
				cur.doomed = false
				cur.perB = nil
			} else {
				if len(c.items) >= s.capFor(b, i) {
					b.overflows++
					s.kill(b, i)
					return
				}
				c.items = append(c.items, item{ah: ah, st: aState{excluded: true}})
			}
			continue
		}
		idx := c.find(ah)
		if idx >= 0 && c.items[idx].st.excluded {
			continue // already excluded here
		}
		var cur *aState
		if idx < 0 {
			if len(c.items) >= s.capFor(b, i) {
				b.overflows++
				b.value[i] = true
				b.supped[i] = true
				s.kill(b, i)
				return
			}
			moved := aState{supp: st.supp, doomed: st.doomed}
			if !c.suppOnly && !st.doomed {
				moved.perB = st.perB.clone()
			}
			if c.suppOnly {
				moved.doomed = false
				moved.perB = nil
			}
			c.items = append(c.items, item{ah: ah, st: moved})
			cur = &c.items[len(c.items)-1].st
		} else {
			cur = &c.items[idx].st
			cur.supp += st.supp
			if c.suppOnly {
				// support-only region: nothing else to combine
			} else if cur.doomed || st.doomed {
				if !cur.doomed {
					cur.doomed = true
					cur.perB = nil
				}
			} else {
				for _, e := range st.perB {
					if pi := cur.perB.find(e.h); pi >= 0 {
						cur.perB[pi].n += e.n
					} else if len(cur.perB) >= s.cond.MaxMultiplicity {
						cur.doomed = true
						cur.perB = nil
						break
					} else {
						cur.perB.add(e.h, e.n)
					}
				}
			}
		}
		// Re-evaluate the conditions on the merged counters.
		if !c.suppOnly && cur.supp >= s.cond.MinSupport {
			if cur.doomed || s.topConfidence(cur) < s.cond.MinTopConfidence {
				b.value[i] = true
				b.supped[i] = true
				cur.excluded = true
				cur.doomed = false
				cur.perB = nil
			}
		}
	}
	s.recountCell(c)
}

// recountCell rebuilds a cell's census counters.
func (s *Sketch) recountCell(c *cell) {
	c.nSupported, c.nDoomed, c.nExcluded = 0, 0, 0
	for i := range c.items {
		st := &c.items[i].st
		switch {
		case st.excluded:
			c.nExcluded++
		default:
			if st.supp >= s.cond.MinSupport {
				c.nSupported++
			}
			if st.doomed {
				c.nDoomed++
			}
		}
	}
}

// recountEntries rebuilds the sketch-wide entry counter after a merge.
func (s *Sketch) recountEntries() {
	n := 0
	for bi := range s.bms {
		for _, c := range s.bms[bi].cells {
			if c == nil {
				continue
			}
			s.recountCell(c)
			for i := range c.items {
				n += 1 + len(c.items[i].st.perB)
			}
		}
	}
	s.entries = n
	if n > s.peak {
		s.peak = n
	}
}
