// Package xhash provides the seeded 64-bit hash family the probabilistic
// counting algorithms are built on (§4.1 of the paper). The paper only
// requires a hash function that maps itemsets to uniformly distributed
// binary strings; we use an FNV-1a core with a splitmix64 finalizer, which
// passes the avalanche requirements of Flajolet–Martin style sketches and
// needs nothing outside the standard library.
package xhash

import "math/bits"

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash is one member of the seeded hash family. The zero value is a valid
// member (seed 0); distinct seeds yield hash functions that behave
// independently for the purposes of stochastic averaging.
type Hash struct {
	seed uint64
}

// New returns the family member with the given seed.
func New(seed uint64) Hash { return Hash{seed: seed} }

// Seed returns the seed selecting this family member, letting estimators
// that persist their state reconstruct the identical hash function.
func (h Hash) Seed() uint64 { return h.seed }

// Sum hashes a string key to a uniformly distributed 64-bit value.
func (h Hash) Sum(key string) uint64 {
	x := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= fnvPrime
	}
	return Mix(x ^ h.seed)
}

// SumBytes hashes a byte-slice key; it is equivalent to Sum(string(key))
// without the conversion allocation.
func (h Hash) SumBytes(key []byte) uint64 {
	x := uint64(fnvOffset)
	for _, c := range key {
		x ^= uint64(c)
		x *= fnvPrime
	}
	return Mix(x ^ h.seed)
}

// SumUint64 hashes an integer key directly; handy for synthetic workloads
// whose itemsets are machine integers.
func (h Hash) SumUint64(key uint64) uint64 {
	return Mix(Mix(key) ^ h.seed)
}

// Mix is the splitmix64 finalizer: a bijective avalanche function on 64-bit
// words. Exposed so generators can derive independent sub-seeds.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rank is the function p(y) of §4.1.1: the position of the least significant
// 1-bit of y, with position 0 the least significant bit. Rank(0) returns 63
// (the all-zero hash lands in the very last cell rather than being dropped,
// which happens with probability 2^-64).
func Rank(y uint64) int {
	if y == 0 {
		return 63
	}
	return bits.TrailingZeros64(y)
}

// Router splits a hash value into a bitmap index and a rank, implementing
// the stochastic-averaging scheme of §4.7 / Flajolet–Martin PCSA: the low
// log2(m) bits select one of m bitmaps and the remaining bits provide the
// geometric rank, so each distinct itemset updates exactly one bitmap.
type Router struct {
	mask  uint64
	shift uint
	m     int
}

// NewRouter returns a Router over m bitmaps. m must be a power of two
// between 1 and 2^16.
func NewRouter(m int) (Router, error) {
	if m < 1 || m > 1<<16 || m&(m-1) != 0 {
		return Router{}, errNotPow2(m)
	}
	shift := uint(bits.TrailingZeros(uint(m)))
	return Router{mask: uint64(m - 1), shift: shift, m: m}, nil
}

// Bitmaps returns the number of bitmaps the router splits across.
func (r Router) Bitmaps() int { return r.m }

// Route maps a hash value to (bitmap index, rank within that bitmap).
func (r Router) Route(h uint64) (bm, rank int) {
	return int(h & r.mask), Rank(h >> r.shift)
}

type errNotPow2 int

func (e errNotPow2) Error() string {
	return "xhash: bitmap count must be a power of two in [1, 65536]"
}
