// Fair-share admission: a Fair dispatcher owns one bounded FIFO lane per
// tenant and drains them with deficit round robin, so a tenant that floods
// its lane can delay only its own batches — every other lane keeps
// receiving its weighted share of dispatch capacity. Each lane feeds its
// own Pool (tenants do not share estimator state), and the single
// dispatcher goroutine is the one caller of Dispatch/Fence on all of them,
// preserving each pool's ordering contract: a lane's batches reach its
// pool in lane-arrival order, so per-tenant state stays bit-identical to a
// dedicated single-tenant server fed the same stream.
package pipeline

import (
	"sync"
	"time"
)

// DefaultQuantum is the per-round deficit credit in tuples a weight-1 lane
// earns. Batches cost their tuple count; a lane may dispatch while its
// accumulated credit covers the head batch, so the quantum bounds how far
// one visit can overshoot the weighted share (one batch's worth).
const DefaultQuantum = 2048

// Fair is the multi-lane dispatcher. NewFair starts its goroutine; Close
// drains every lane and stops it.
type Fair struct {
	mu      sync.Mutex
	work    sync.Cond // batches queued, or closing
	lanes   []*Lane
	quantum int
	closed  bool
	done    chan struct{}

	// gate, when set, runs in the dispatcher goroutine before each batch is
	// handed to its pool — the server's test seam for deterministic queue
	// states. Install with SetGate before batches are enqueued.
	gate func()

	// afterDispatch, when set, observes every dispatched batch from the
	// dispatcher goroutine — a test hook for drain-order properties.
	afterDispatch func(l *Lane, b *Batch)
}

// Lane is one tenant's bounded ingest queue. Enqueue/TryEnqueue are safe
// for concurrent use by any number of producers; batches leave in arrival
// order toward the lane's pool.
type Lane struct {
	f      *Fair
	name   string
	weight int
	cap    int
	pool   *Pool
	// after, when set, runs in the dispatcher goroutine right after each of
	// this lane's batches is dispatched, with the clock read taken just
	// before the dispatch — the legal place to Fence the lane's pool
	// (periodic checkpoints), since the dispatcher goroutine is the pool's
	// only dispatcher.
	after func(b *Batch, start time.Time)

	q       []*Batch
	deficit int64
	// inflight counts batches popped from q but not yet through Dispatch;
	// RemoveLane waits for both q and inflight to reach zero, so the lane's
	// pool is quiescent from the dispatcher's side when it returns.
	inflight  int
	room      sync.Cond // lane drained below cap, or lane/dispatcher closing
	closed    bool
	highWater int64
}

// NewFair starts a fair-share dispatcher with the given per-round quantum
// in tuples (0 selects DefaultQuantum).
func NewFair(quantum int) *Fair {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	f := &Fair{quantum: quantum, done: make(chan struct{})}
	f.work.L = &f.mu
	go f.loop()
	return f
}

// AddLane registers a lane draining into pool with the given dispatch
// weight (minimum 1) and queue capacity in batches (minimum 1). after, if
// non-nil, runs in the dispatcher goroutine after each of the lane's
// batches is dispatched. Safe to call while other lanes are live.
// SetGate installs the pre-dispatch hook. Call it before any batch is
// enqueued; the dispatcher snapshots it under the lock each round.
func (f *Fair) SetGate(fn func()) {
	f.mu.Lock()
	f.gate = fn
	f.mu.Unlock()
}

func (f *Fair) AddLane(name string, weight, capacity int, pool *Pool, after func(b *Batch, start time.Time)) *Lane {
	if weight < 1 {
		weight = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	l := &Lane{f: f, name: name, weight: weight, cap: capacity, pool: pool, after: after}
	l.room.L = &f.mu
	f.mu.Lock()
	f.lanes = append(f.lanes, l)
	f.mu.Unlock()
	return l
}

// RemoveLane stops a lane accepting batches, waits until the dispatcher
// has dispatched what it already accepted, and unregisters it. When it
// returns, the dispatcher will never touch the lane's pool again — the
// caller may fence and close the pool from its own goroutine. The lane's
// pool still holds in-flight tasks until that fence.
func (f *Fair) RemoveLane(l *Lane) {
	f.mu.Lock()
	l.closed = true
	l.room.Broadcast()
	f.work.Signal()
	// No f.closed escape hatch: while the lane is still registered the
	// dispatcher drains it even in closed mode, so the wait always ends.
	for len(l.q) > 0 || l.inflight > 0 {
		l.room.Wait()
	}
	for i, el := range f.lanes {
		if el == l {
			f.lanes = append(f.lanes[:i], f.lanes[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}

// Close stops admission on every lane, waits for the dispatcher to drain
// and dispatch everything already accepted, and stops it. The lanes'
// pools still hold in-flight work — the caller fences and closes them.
func (f *Fair) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.closed = true
	f.work.Broadcast()
	for _, l := range f.lanes {
		l.room.Broadcast()
	}
	f.mu.Unlock()
	<-f.done
}

// TryEnqueue admits a planned batch if the lane has room, reporting false
// (a Busy reply, or a drop on the UDP lane) when it does not or when the
// lane is closed. On success the returned depth is the batch's own
// deterministic queue-depth sample for the high-water telemetry.
func (l *Lane) TryEnqueue(b *Batch) (depth int, ok bool) {
	f := l.f
	f.mu.Lock()
	if l.closed || f.closed || len(l.q) >= l.cap {
		f.mu.Unlock()
		return 0, false
	}
	l.push(b)
	depth = len(l.q)
	f.work.Signal()
	f.mu.Unlock()
	return depth, true
}

// Enqueue admits a planned batch, blocking while the lane is full — the
// BlockOnFull backpressure mode. It reports false only when the lane or
// dispatcher closed before the batch was admitted.
func (l *Lane) Enqueue(b *Batch) (depth int, ok bool) {
	f := l.f
	f.mu.Lock()
	for !l.closed && !f.closed && len(l.q) >= l.cap {
		l.room.Wait()
	}
	if l.closed || f.closed {
		f.mu.Unlock()
		return 0, false
	}
	l.push(b)
	depth = len(l.q)
	f.work.Signal()
	f.mu.Unlock()
	return depth, true
}

// push appends under f.mu and folds the depth into the high-water mark.
func (l *Lane) push(b *Batch) {
	l.q = append(l.q, b)
	if d := int64(len(l.q)); d > l.highWater {
		l.highWater = d
	}
}

// Closed reports whether the lane has stopped accepting batches — removed,
// or the dispatcher closed. Callers use it to distinguish a terminal
// refusal from transient backpressure.
func (l *Lane) Closed() bool {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	return l.closed || l.f.closed
}

// Depth returns the lane's current queue depth in batches.
func (l *Lane) Depth() int {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	return len(l.q)
}

// HighWater returns the deepest the lane has been.
func (l *Lane) HighWater() int64 {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	return l.highWater
}

// Pool returns the pool the lane drains into.
func (l *Lane) Pool() *Pool { return l.pool }

// Name returns the lane's tenant name.
func (l *Lane) Name() string { return l.name }

// cost is a batch's deficit price. Empty batches still cost one unit so a
// flood of them cannot dispatch unbounded work in one visit.
func cost(b *Batch) int64 {
	if n := int64(b.Tuples()); n > 1 {
		return n
	}
	return 1
}

// loop is the dispatcher: deficit round robin over the lanes. Each round
// visits every backlogged lane, credits it quantum×weight, and dispatches
// head batches while the credit covers them; an empty lane's credit resets
// so idle time never banks priority. Dispatch itself (which can block on a
// saturated worker queue) runs outside f.mu, so producers keep enqueueing
// and other lanes' workers keep applying while one pool absorbs a batch.
func (f *Fair) loop() {
	defer close(f.done)
	var ready []*Batch
	f.mu.Lock()
	for {
		busy := false
		for i := 0; i < len(f.lanes); i++ {
			l := f.lanes[i]
			if len(l.q) == 0 {
				l.deficit = 0
				continue
			}
			busy = true
			l.deficit += int64(f.quantum) * int64(l.weight)
			ready = ready[:0]
			for len(l.q) > 0 && cost(l.q[0]) <= l.deficit {
				b := l.q[0]
				l.q[0] = nil
				l.q = l.q[1:]
				l.deficit -= cost(b)
				ready = append(ready, b)
			}
			if len(l.q) == 0 {
				l.deficit = 0
			}
			if len(ready) == 0 {
				continue
			}
			l.inflight = len(ready)
			gate := f.gate
			l.room.Broadcast()
			f.mu.Unlock()
			for _, b := range ready {
				if gate != nil {
					gate()
				}
				var start time.Time
				if l.after != nil {
					start = time.Now()
				}
				l.pool.Dispatch(b)
				if f.afterDispatch != nil {
					f.afterDispatch(l, b)
				}
				if l.after != nil {
					l.after(b, start)
				}
			}
			f.mu.Lock()
			l.inflight = 0
			l.room.Broadcast()
		}
		if busy {
			continue
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		f.work.Wait()
	}
}
