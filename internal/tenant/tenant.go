// Package tenant is the multi-tenancy layer of the serving subsystem: a
// registry of namespaced tenants, each owning its own engine, statement
// registry, checkpoint lineage and counters, created and dropped online.
// The server pins each authenticated connection to one tenant (proto.TAuth)
// and asks this package two questions on every ingest batch: does the
// token authenticate the tenant (HMAC-SHA256 connect tokens, the udpx
// connect_token idiom), and does the batch fit the tenant's declared
// budgets (a token-bucket ingest rate and a memory ceiling in the spirit
// of the paper's bounded-sketch tradeoff — the budget is declared at
// create time and enforced at admission, never by degrading neighbors).
// A refused batch is refused before planning or enqueueing, so refusal
// leaves no partial engine state.
package tenant

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"implicate/internal/checkpoint"
	"implicate/internal/pipeline"
	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

// DefaultName is the implicit tenant a connection serves until (unless) it
// authenticates: the engine handed to the server's config, exactly the
// single-tenant behavior older clients expect. The name is reserved — a
// named tenant cannot claim it.
const DefaultName = "default"

// MaxNameLen bounds tenant names; the proto codec enforces a looser wire
// bound, this is the registry's.
const MaxNameLen = 128

// Backends maps estimator kind names to factories — the same mapping the
// checkpoint resolver uses, so a tenant's checkpoint restores through the
// map it was created from.
type Backends map[string]query.Backend

// Config declares one tenant.
type Config struct {
	// Name is the namespace, pinned by TAuth. Letters, digits, ".", "_",
	// "-" only — it names the tenant's checkpoint file.
	Name string
	// Queries are the implication statements the tenant's engine registers,
	// in statement-id order. Ignored when the tenant resumes from its
	// checkpoint (the checkpoint carries them).
	Queries []string
	// Backend names the estimator factory (a Backends key) the queries
	// register with.
	Backend string
	// MemBudget caps the engine's self-assessed estimator memory in bytes;
	// at or above it, ingest refuses with a quota reply. Zero is unlimited.
	MemBudget int64
	// Rate caps admitted ingest in tuples per second (token bucket); zero
	// is unlimited.
	Rate float64
	// Burst is the token bucket's capacity in tuples; zero selects
	// max(Rate, 65536).
	Burst float64
	// Weight is the tenant's fair-share dispatch weight; zero selects 1.
	Weight int
	// QueueLen bounds the tenant's ingest lane in batches; zero selects the
	// server's queue depth.
	QueueLen int
}

// Tenant is one live namespace. The server attaches Pool and Lane after
// construction and owns their lifecycle; everything else is internal.
type Tenant struct {
	cfg Config
	eng *query.Engine

	// Mu is the tenant-scoped read/write coordination point the server
	// used to hold process-wide: queries and stats hold it shared, merges
	// and checkpoint captures exclusive. Workers never take it.
	Mu sync.RWMutex

	// Pool fans the tenant's batches out; Lane queues them for the
	// fair-share dispatcher. Both are attached by the server before the
	// tenant serves and must not change afterwards.
	Pool *pipeline.Pool
	Lane *pipeline.Lane

	// periodic drives the tenant's checkpoint cadence; guarded by Mu like
	// the capture itself. Zero-valued when the server has no checkpoint
	// directory.
	periodic checkpoint.Periodic

	// stmts caches the engine's statement list; statements are registered
	// before a tenant serves and never change afterwards, so handlers read
	// this instead of re-copying the engine's slice per request.
	stmts []*query.Statement

	tuples        atomic.Int64
	batches       atomic.Int64
	rejected      atomic.Int64
	quotaRefusals atomic.Int64
	memBytes      atomic.Int64

	qmu    sync.Mutex
	tokens float64
	filled time.Time
}

// ValidName reports whether a tenant name is well-formed: non-reserved,
// bounded, and safe to embed in a checkpoint filename.
func ValidName(name string) bool {
	if name == "" || name == DefaultName || len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return name != "." && name != ".."
}

// CheckpointPath names a tenant's checkpoint file under dir.
func CheckpointPath(dir, name string) string {
	return filepath.Join(dir, name+".ckpt")
}

// New builds a tenant: fresh from cfg.Queries, or — when dir holds
// <name>.ckpt — resumed from its checkpoint lineage (resumed reports
// which). every sets the periodic checkpoint interval in applied tuples;
// it only matters when dir is non-empty.
func New(cfg Config, schema *stream.Schema, backends Backends, dir string, every int64) (t *Tenant, resumed bool, err error) {
	if !ValidName(cfg.Name) {
		return nil, false, fmt.Errorf("tenant: invalid name %q", cfg.Name)
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	if cfg.Weight < 1 {
		return nil, false, fmt.Errorf("tenant %s: weight %d must be >= 1", cfg.Name, cfg.Weight)
	}
	if cfg.MemBudget < 0 || cfg.Rate < 0 || cfg.Burst < 0 || cfg.QueueLen < 0 {
		return nil, false, fmt.Errorf("tenant %s: negative budget", cfg.Name)
	}
	if cfg.Burst == 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 65536 {
			cfg.Burst = 65536
		}
	}
	t = &Tenant{cfg: cfg, tokens: cfg.Burst}
	resolve := func(q query.Query, kind string) (query.Backend, error) {
		b, ok := backends[kind]
		if !ok {
			return nil, fmt.Errorf("tenant %s: checkpoint needs a %q backend the server cannot build", cfg.Name, kind)
		}
		return b, nil
	}
	if dir != "" {
		path := CheckpointPath(dir, cfg.Name)
		t.periodic = checkpoint.Periodic{Path: path, Every: every}
		if _, statErr := os.Stat(path); statErr == nil {
			snap, err := checkpoint.Read(path)
			if err != nil {
				return nil, false, fmt.Errorf("tenant %s: %w", cfg.Name, err)
			}
			t.eng, err = checkpoint.Restore(snap, schema, resolve)
			if err != nil {
				return nil, false, fmt.Errorf("tenant %s: %w", cfg.Name, err)
			}
			t.periodic.SkipTo(t.eng.Tuples())
			t.stmts = t.eng.Statements()
			return t, true, nil
		}
	}
	backend, ok := backends[cfg.Backend]
	if !ok {
		return nil, false, fmt.Errorf("tenant %s: unknown backend %q", cfg.Name, cfg.Backend)
	}
	if len(cfg.Queries) == 0 {
		return nil, false, fmt.Errorf("tenant %s: no queries", cfg.Name)
	}
	t.eng = query.NewEngine(schema)
	for _, sql := range cfg.Queries {
		if _, err := t.eng.RegisterSQL(sql, backend); err != nil {
			return nil, false, fmt.Errorf("tenant %s: %w", cfg.Name, err)
		}
	}
	t.stmts = t.eng.Statements()
	return t, false, nil
}

// Wrap lifts an existing engine into a Tenant — how the server's implicit
// default tenant (Config.Engine, possibly resumed by the caller) joins the
// registry machinery without changing hands.
func Wrap(name string, eng *query.Engine, ckptPath string, every int64) *Tenant {
	t := &Tenant{cfg: Config{Name: name, Weight: 1, Burst: 65536}, eng: eng, stmts: eng.Statements()}
	if ckptPath != "" {
		t.periodic = checkpoint.Periodic{Path: ckptPath, Every: every}
		t.periodic.SkipTo(eng.Tuples())
	}
	return t
}

// Name returns the tenant's namespace.
func (t *Tenant) Name() string { return t.cfg.Name }

// Engine returns the tenant's engine.
func (t *Tenant) Engine() *query.Engine { return t.eng }

// Statements returns the tenant's registered statements in statement-id
// order, cached at construction (statements never change while serving).
// Callers must not mutate the slice.
func (t *Tenant) Statements() []*query.Statement { return t.stmts }

// Weight returns the fair-share dispatch weight.
func (t *Tenant) Weight() int { return t.cfg.Weight }

// QueueLen returns the configured lane bound (0: server default).
func (t *Tenant) QueueLen() int { return t.cfg.QueueLen }

// CheckpointPath returns the tenant's checkpoint file ("" when the server
// has no checkpoint directory).
func (t *Tenant) CheckpointPath() string { return t.periodic.Path }

// QuotaError is an admission refusal: the batch was not planned, not
// enqueued, and left no engine state. RetryAfter of zero means retrying
// will not help until state changes (a memory ceiling).
type QuotaError struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string { return "quota: " + e.Msg }

// Admit charges an n-tuple batch against the tenant's budgets, refusing —
// before any planning or enqueueing — when it would breach them. The
// memory ceiling compares the engine's last self-assessment (NoteApplied
// refreshes it); the rate is a token bucket refilled from the wall clock.
func (t *Tenant) Admit(n int, now time.Time) *QuotaError {
	if b := t.cfg.MemBudget; b > 0 {
		if used := t.memBytes.Load(); used >= b {
			t.quotaRefusals.Add(1)
			return &QuotaError{Msg: fmt.Sprintf("tenant %s over memory budget (%d of %d bytes)", t.cfg.Name, used, b)}
		}
	}
	if t.cfg.Rate > 0 {
		t.qmu.Lock()
		if t.filled.IsZero() {
			t.filled = now
		}
		t.tokens += now.Sub(t.filled).Seconds() * t.cfg.Rate
		t.filled = now
		if t.tokens > t.cfg.Burst {
			t.tokens = t.cfg.Burst
		}
		if t.tokens < float64(n) {
			wait := time.Duration((float64(n) - t.tokens) / t.cfg.Rate * float64(time.Second))
			t.qmu.Unlock()
			t.quotaRefusals.Add(1)
			return &QuotaError{Msg: fmt.Sprintf("tenant %s over ingest rate (%g tuples/s)", t.cfg.Name, t.cfg.Rate), RetryAfter: wait}
		}
		t.tokens -= float64(n)
		t.qmu.Unlock()
	}
	return nil
}

// NoteApplied is the tenant's pool OnApplied target: it advances the
// tuple counter and — for budgeted tenants — refreshes the memory
// self-assessment from the engine's health reports, so the ceiling binds
// within one batch of being crossed.
func (t *Tenant) NoteApplied(n int) {
	t.tuples.Add(int64(n))
	if t.cfg.MemBudget > 0 {
		var sum int64
		for _, r := range t.eng.HealthReports() {
			sum += r.MemBytes
		}
		t.memBytes.Store(sum)
	}
}

// AddBatch counts one batch admitted to the lane.
func (t *Tenant) AddBatch() { t.batches.Add(1) }

// AddRejected counts one batch refused with a backpressure (Busy) reply.
func (t *Tenant) AddRejected() { t.rejected.Add(1) }

// MaybeCheckpoint writes a periodic checkpoint when the cadence is due.
// Like the single-tenant dispatcher's capture point, the caller must have
// fenced the tenant's pool; the capture runs under the tenant's exclusive
// lock so no merge mutates an estimator mid-marshal.
func (t *Tenant) MaybeCheckpoint() (bool, error) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	return t.periodic.Maybe(t.eng, t.eng.Tuples())
}

// CheckpointEvery returns the periodic checkpoint interval in applied
// tuples, zero when periodic checkpointing is off — the dispatch hook's
// cheap cadence check, so the pool is only fenced when a write is due.
func (t *Tenant) CheckpointEvery() int64 {
	if t.periodic.Path == "" {
		return 0
	}
	return t.periodic.Every
}

// FinalCheckpoint captures and writes the tenant's state unconditionally —
// the graceful-shutdown and drop-tenant path. The caller must have fenced
// the tenant's pool.
func (t *Tenant) FinalCheckpoint() error {
	if t.periodic.Path == "" {
		return nil
	}
	t.Mu.Lock()
	defer t.Mu.Unlock()
	snap, err := checkpoint.Capture(t.eng, t.eng.Tuples())
	if err != nil {
		return err
	}
	return checkpoint.Write(t.periodic.Path, snap)
}

// Stats freezes the tenant's counters for telemetry; the queue high-water
// mark is read off the attached lane.
func (t *Tenant) Stats() telemetry.TenantStats {
	var hw int64
	if t.Lane != nil {
		hw = t.Lane.HighWater()
	}
	return telemetry.TenantStats{
		Name:           t.cfg.Name,
		Weight:         int64(t.cfg.Weight),
		Tuples:         t.tuples.Load(),
		Batches:        t.batches.Load(),
		Rejected:       t.rejected.Load(),
		QuotaRefusals:  t.quotaRefusals.Load(),
		MemBytes:       t.memBytes.Load(),
		MemBudget:      t.cfg.MemBudget,
		QueueHighWater: hw,
	}
}

// Token derives a tenant's connect token from the server key: hex of
// HMAC-SHA256(key, name). Operators mint tokens offline with the same key
// (impserved prints them at startup); clients present them in TAuth.
func Token(key []byte, name string) string {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(name))
	return hex.EncodeToString(m.Sum(nil))
}

// VerifyToken checks a presented connect token against the server key in
// constant time. An empty key disables verification (any token passes) —
// the keyless deployments Registry documents. The default tenant is not in
// any registry, so its TAuth path verifies through this directly.
func VerifyToken(key []byte, name, token string) bool {
	if len(key) == 0 {
		return true
	}
	return hmac.Equal([]byte(token), []byte(Token(key, name)))
}

// Registry is the live tenant map. All methods are safe for concurrent
// use.
type Registry struct {
	mu  sync.RWMutex
	key []byte
	m   map[string]*Tenant
}

// NewRegistry builds a registry whose Authenticate verifies tokens against
// key. An empty key disables verification — any token authenticates an
// existing tenant — for deployments that gate access at the network layer.
func NewRegistry(key []byte) *Registry {
	return &Registry{key: append([]byte(nil), key...), m: make(map[string]*Tenant)}
}

// Add registers a tenant, refusing duplicates.
func (r *Registry) Add(t *Tenant) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[t.cfg.Name]; ok {
		return fmt.Errorf("tenant %s already exists", t.cfg.Name)
	}
	r.m[t.cfg.Name] = t
	return nil
}

// Get looks a tenant up by name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.m[name]
	return t, ok
}

// Remove unregisters and returns a tenant. New sessions stop resolving it
// immediately; connections already pinned to it drain through the server's
// drop path.
func (r *Registry) Remove(name string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.m[name]
	delete(r.m, name)
	return t, ok
}

// List returns the registered tenants sorted by name.
func (r *Registry) List() []*Tenant {
	r.mu.RLock()
	ts := make([]*Tenant, 0, len(r.m))
	for _, t := range r.m {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].cfg.Name < ts[j].cfg.Name })
	return ts
}

// Len returns the registered tenant count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Authenticate resolves name and verifies token (constant-time compare).
// The error does not distinguish a missing tenant from a bad token, so
// probing cannot enumerate namespaces.
func (r *Registry) Authenticate(name, token string) (*Tenant, error) {
	r.mu.RLock()
	t, ok := r.m[name]
	key := r.key
	r.mu.RUnlock()
	ok = ok && VerifyToken(key, name, token)
	if !ok {
		return nil, fmt.Errorf("tenant %q: unknown tenant or bad token", name)
	}
	return t, nil
}
