package dsample

import (
	"fmt"
	"sort"

	"implicate/internal/imps"
	"implicate/internal/wire"
	"implicate/internal/xhash"
)

// Binary serialization for the Distinct Sampling estimator, so baseline
// statements survive engine checkpoints. The hash seed is part of the state
// — a restored sampler must admit exactly the values the original would.

const dsMagic = "DSMP\x01"

// Conditions returns the implication conditions.
func (s *Sketch) Conditions() imps.Conditions { return s.cond }

// MarshalBinary encodes the complete sampler state.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	e := wire.NewEncoder(1024)
	e.Raw([]byte(dsMagic))

	e.U32(uint32(s.cond.MaxMultiplicity))
	e.I64(s.cond.MinSupport)
	e.U32(uint32(s.cond.TopC))
	e.F64(s.cond.MinTopConfidence)
	e.U32(uint32(s.size))
	e.U32(uint32(s.t))
	e.U64(s.hash.Seed())
	e.U32(uint32(s.level))
	e.I64(s.tuples)

	keys := make([]string, 0, len(s.sample))
	for a := range s.sample {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, a := range keys {
		v := s.sample[a]
		e.Str(a)
		e.U32(uint32(v.rank))
		e.I64(v.supp)
		e.Bool(v.out)
		e.Bool(v.capped)
		if v.out {
			continue
		}
		bs := make([]string, 0, len(v.perB))
		for b := range v.perB {
			bs = append(bs, b)
		}
		sort.Strings(bs)
		e.U32(uint32(len(bs)))
		for _, b := range bs {
			e.Str(b)
			e.I64(v.perB[b])
		}
	}
	return e.Bytes(), nil
}

// UnmarshalSketch decodes a sampler previously encoded with MarshalBinary,
// rebuilding the entry count from the decoded sample.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	d := wire.NewDecoder(data)
	d.Magic(dsMagic)

	var cond imps.Conditions
	cond.MaxMultiplicity = int(d.U32())
	cond.MinSupport = d.I64()
	cond.TopC = int(d.U32())
	cond.MinTopConfidence = d.F64()
	size := int(d.U32())
	t := int(d.U32())
	seed := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	s, err := New(cond, size, t, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
	}
	s.level = int(d.U32())
	s.tuples = d.I64()
	if s.level > 64 || s.tuples < 0 {
		return nil, wire.ErrCorrupt
	}

	// Each sampled value costs at least 4 + 4 + 8 + 1 + 1 bytes.
	nvals := d.Count(18)
	for i := 0; i < nvals; i++ {
		a := d.Str(1 << 24)
		v := &val{rank: int(d.U32()), supp: d.I64(), out: d.Bool(), capped: d.Bool()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		// A sampled value's rank must admit it at the current level, its
		// hash must actually produce that rank, and its support is positive.
		if v.supp < 1 || v.rank < s.level || v.rank != xhash.Rank(s.hash.Sum(a)) {
			return nil, wire.ErrCorrupt
		}
		if _, dup := s.sample[a]; dup {
			return nil, wire.ErrCorrupt
		}
		if !v.out {
			npairs := d.Count(12)
			if npairs > s.t {
				return nil, wire.ErrCorrupt
			}
			v.perB = make(map[string]int64, npairs)
			for p := 0; p < npairs; p++ {
				b := d.Str(1 << 24)
				n := d.I64()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if n < 1 {
					return nil, wire.ErrCorrupt
				}
				if _, dup := v.perB[b]; dup {
					return nil, wire.ErrCorrupt
				}
				v.perB[b] = n
			}
			s.entries += len(v.perB)
		}
		s.sample[a] = v
		s.entries++
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// ConfigFingerprint identifies the Distinct Sampling algorithm and its
// parameters. The seed is included: it is explicit configuration here, not
// an auto-derived value.
func (s *Sketch) ConfigFingerprint() string {
	return fmt.Sprintf("ds(%s|size=%d,t=%d,seed=%d)", s.cond, s.size, s.t, s.hash.Seed())
}
