// Fair-share admission: a Fair dispatcher owns one bounded FIFO lane per
// tenant and drains them with deficit round robin, so a tenant that floods
// its lane can delay only its own batches — every other lane keeps
// receiving its weighted share of dispatch capacity. Each lane feeds its
// own Pool (tenants do not share estimator state).
//
// Dispatch itself is sharded (DESIGN.md §15): NewFair starts S dispatcher
// goroutines, and a sharded lane's batches are dispatched cooperatively —
// shard k enqueues the tasks owned by workers w with w % S == k, each
// shard walking the lane in admission order. Worker queues are single-
// producer again (worker w hears only from shard w % S), so per-partition
// FIFO order — the only order the bit-identity argument needs — survives
// exactly as under the single dispatcher, while S readers' worth of
// enqueue work proceeds in parallel. Lanes that installed an after hook
// stay serial (dispatched whole, by shard 0 only): the hook is the legal
// fence point for periodic checkpoints, and a fence is only
// prefix-consistent when no other shard can have raced ahead with a later
// batch's tasks.
package pipeline

import (
	"sync"
	"time"

	"implicate/internal/obs"
)

// DefaultQuantum is the per-round deficit credit in tuples a weight-1 lane
// earns. Batches cost their tuple count; a lane may dispatch while its
// accumulated credit covers the head batch, so the quantum bounds how far
// one visit can overshoot the weighted share (one batch's worth).
const DefaultQuantum = 2048

// Fair is the multi-lane dispatcher. NewFair starts its goroutines; Close
// drains every lane and stops them.
type Fair struct {
	mu      sync.Mutex
	work    sync.Cond // batches queued, or closing
	lanes   []*Lane
	quantum int
	shards  int
	closed  bool
	wg      sync.WaitGroup

	// gate, when set, runs in a dispatcher goroutine before each batch (or
	// batch shard) is handed to its pool — the server's test seam for
	// deterministic queue states. Install with SetGate before batches are
	// enqueued.
	gate func()

	// afterDispatch, when set, observes every dispatched batch (once, by
	// tuple count — the batch itself may already be recycled) from a
	// dispatcher goroutine — a test hook for drain-order properties.
	afterDispatch func(l *Lane, tuples int)
}

// laneEntry is one queued batch plus its admission-time tuple count. The
// count is captured at push because the pool recycles the batch the moment
// its last task applies — possibly before another dispatch shard, or a
// hook, would have read b.Tuples().
type laneEntry struct {
	b      *Batch
	tuples int
}

// Lane is one tenant's bounded ingest queue. Enqueue/TryEnqueue are safe
// for concurrent use by any number of producers; batches leave in arrival
// order toward the lane's pool.
type Lane struct {
	f      *Fair
	name   string
	weight int
	cap    int
	pool   *Pool
	// shards is how many dispatcher goroutines cooperate on this lane: the
	// Fair's shard count, or 1 when an after hook pins the lane to the
	// serial path.
	shards int
	// after, when set, runs in the dispatcher goroutine right after each of
	// this lane's batches is dispatched, with the batch's inbound trace
	// link, its tuple count and the clock read taken just before the
	// dispatch — the legal place to Fence the lane's pool (periodic
	// checkpoints), since a lane with an after hook is dispatched by exactly
	// one goroutine.
	after func(link obs.Link, tuples int, start time.Time)

	// q holds admitted entries not yet consumed by every shard; base is the
	// absolute admission index of q[0], and pos[k] the absolute index of
	// the next entry shard k will dispatch. An entry leaves q once min(pos)
	// passes it.
	q    []laneEntry
	base int64
	pos  []int64
	// deficit is each shard's DRR credit. Shards run the same weighted
	// round robin independently; since every shard dispatches a slice of
	// every batch, symmetric per-shard credit preserves the lane-level
	// weighted shares.
	deficit []int64
	// inflight counts, per shard, entries popped but not yet through
	// dispatch; RemoveLane waits for q and every shard's inflight to reach
	// zero, so the lane's pool is quiescent from the dispatchers' side when
	// it returns.
	inflight  []int
	room      sync.Cond // lane drained below cap, or lane/dispatcher closing
	closed    bool
	highWater int64
	// tasks counts worker tasks each shard has enqueued, and shardHW is
	// each shard's deepest unconsumed backlog in batches — together the
	// shard-imbalance telemetry (a shard whose task share or backlog runs
	// hot owns a skewed slice of the worker pool).
	tasks   []int64
	shardHW []int64
}

// ShardStat is one dispatch shard's accumulated counters.
type ShardStat struct {
	// Tasks is the number of worker tasks the shard enqueued.
	Tasks int64
	// HighWater is the deepest backlog (admitted entries not yet consumed
	// by this shard) observed, in batches.
	HighWater int64
}

// ShardStats returns a copy of the lane's per-shard counters, indexed by
// dispatch shard.
func (l *Lane) ShardStats() []ShardStat {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	out := make([]ShardStat, l.shards)
	for k := 0; k < l.shards; k++ {
		out[k] = ShardStat{Tasks: l.tasks[k], HighWater: l.shardHW[k]}
	}
	return out
}

// NewFair starts a fair-share dispatcher with the given per-round quantum
// in tuples (0 selects DefaultQuantum) and the given dispatch shard count
// (values below 1 select the single-dispatcher mode, which behaves exactly
// like the pre-sharding Fair).
func NewFair(quantum, shards int) *Fair {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if shards < 1 {
		shards = 1
	}
	f := &Fair{quantum: quantum, shards: shards}
	f.work.L = &f.mu
	f.wg.Add(shards)
	for k := 0; k < shards; k++ {
		go f.loop(k)
	}
	return f
}

// Shards returns the dispatcher goroutine count.
func (f *Fair) Shards() int { return f.shards }

// SetGate installs the pre-dispatch hook. Call it before any batch is
// enqueued; the dispatchers snapshot it under the lock each round. With
// more than one shard the hook runs once per batch per shard, possibly
// concurrently.
func (f *Fair) SetGate(fn func()) {
	f.mu.Lock()
	f.gate = fn
	f.mu.Unlock()
}

// AddLane registers a lane draining into pool with the given dispatch
// weight (minimum 1) and queue capacity in batches (minimum 1). after, if
// non-nil, runs after each of the lane's batches is dispatched and forces
// the lane onto the serial (single-shard) dispatch path — the fence a
// checkpoint hook takes is only prefix-consistent when one goroutine owns
// the lane's whole dispatch order. Safe to call while other lanes are live.
func (f *Fair) AddLane(name string, weight, capacity int, pool *Pool, after func(link obs.Link, tuples int, start time.Time)) *Lane {
	if weight < 1 {
		weight = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	shards := f.shards
	if after != nil {
		shards = 1
	}
	l := &Lane{
		f: f, name: name, weight: weight, cap: capacity, pool: pool,
		after: after, shards: shards,
		pos:      make([]int64, shards),
		deficit:  make([]int64, shards),
		inflight: make([]int, shards),
		tasks:    make([]int64, shards),
		shardHW:  make([]int64, shards),
	}
	l.room.L = &f.mu
	f.mu.Lock()
	f.lanes = append(f.lanes, l)
	f.mu.Unlock()
	return l
}

// RemoveLane stops a lane accepting batches, waits until the dispatchers
// have dispatched what it already accepted, and unregisters it. When it
// returns, no dispatcher will ever touch the lane's pool again — the
// caller may fence and close the pool from its own goroutine. The lane's
// pool still holds in-flight tasks until that fence.
func (f *Fair) RemoveLane(l *Lane) {
	f.mu.Lock()
	l.closed = true
	l.room.Broadcast()
	f.work.Broadcast()
	// No f.closed escape hatch: while the lane is still registered the
	// dispatchers drain it even in closed mode, so the wait always ends.
	for len(l.q) > 0 || l.anyInflight() {
		l.room.Wait()
	}
	for i, el := range f.lanes {
		if el == l {
			f.lanes = append(f.lanes[:i], f.lanes[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}

// anyInflight reports whether any shard holds popped, undischarged
// entries; caller holds f.mu.
func (l *Lane) anyInflight() bool {
	for _, n := range l.inflight {
		if n > 0 {
			return true
		}
	}
	return false
}

// Close stops admission on every lane, waits for the dispatchers to drain
// and dispatch everything already accepted, and stops them. The lanes'
// pools still hold in-flight work — the caller fences and closes them.
func (f *Fair) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		f.work.Broadcast()
		for _, l := range f.lanes {
			l.room.Broadcast()
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// TryEnqueue admits a planned batch if the lane has room, reporting false
// (a Busy reply, or a drop on the UDP lane) when it does not or when the
// lane is closed. On success the batch belongs to the dispatcher — the
// caller must not touch it again. The returned depth is the batch's own
// deterministic queue-depth sample for the high-water telemetry.
func (l *Lane) TryEnqueue(b *Batch) (depth int, ok bool) {
	f := l.f
	f.mu.Lock()
	if l.closed || f.closed || len(l.q) >= l.cap {
		f.mu.Unlock()
		return 0, false
	}
	l.push(b)
	depth = len(l.q)
	f.work.Broadcast()
	f.mu.Unlock()
	return depth, true
}

// Enqueue admits a planned batch, blocking while the lane is full — the
// BlockOnFull backpressure mode. It reports false only when the lane or
// dispatcher closed before the batch was admitted (the batch then still
// belongs to the caller, who should Release it).
func (l *Lane) Enqueue(b *Batch) (depth int, ok bool) {
	f := l.f
	f.mu.Lock()
	for !l.closed && !f.closed && len(l.q) >= l.cap {
		l.room.Wait()
	}
	if l.closed || f.closed {
		f.mu.Unlock()
		return 0, false
	}
	l.push(b)
	depth = len(l.q)
	f.work.Broadcast()
	f.mu.Unlock()
	return depth, true
}

// push appends under f.mu, arms a sharded batch's dispatch guards, and
// folds the depth into the high-water mark.
func (l *Lane) push(b *Batch) {
	if l.shards > 1 {
		b.prepareShared(l.shards)
	}
	l.q = append(l.q, laneEntry{b: b, tuples: b.Tuples()})
	if d := int64(len(l.q)); d > l.highWater {
		l.highWater = d
	}
	end := l.base + int64(len(l.q))
	for k := 0; k < l.shards; k++ {
		if d := end - l.pos[k]; d > l.shardHW[k] {
			l.shardHW[k] = d
		}
	}
}

// Closed reports whether the lane has stopped accepting batches — removed,
// or the dispatcher closed. Callers use it to distinguish a terminal
// refusal from transient backpressure.
func (l *Lane) Closed() bool {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	return l.closed || l.f.closed
}

// Depth returns the lane's current queue depth in batches (entries not yet
// consumed by every dispatch shard).
func (l *Lane) Depth() int {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	return len(l.q)
}

// HighWater returns the deepest the lane has been.
func (l *Lane) HighWater() int64 {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	return l.highWater
}

// Pool returns the pool the lane drains into.
func (l *Lane) Pool() *Pool { return l.pool }

// Name returns the lane's tenant name.
func (l *Lane) Name() string { return l.name }

// ecost is an entry's deficit price. Empty batches still cost one unit so
// a flood of them cannot dispatch unbounded work in one visit.
func ecost(e laneEntry) int64 {
	if n := int64(e.tuples); n > 1 {
		return n
	}
	return 1
}

// advance retires fully consumed head entries — those every participating
// shard's cursor has passed — dropping their batch references; caller
// holds f.mu.
func (l *Lane) advance() {
	m := l.pos[0]
	for _, p := range l.pos[1:] {
		if p < m {
			m = p
		}
	}
	for l.base < m && len(l.q) > 0 {
		l.q[0] = laneEntry{}
		l.q = l.q[1:]
		l.base++
	}
}

// loop is dispatcher shard k: deficit round robin over the lanes this
// shard participates in. Each round visits every backlogged lane, credits
// it quantum×weight, and dispatches head entries while the credit covers
// them; an empty lane's credit resets so idle time never banks priority.
// Dispatch itself (which can block on a saturated worker queue) runs
// outside f.mu, so producers keep enqueueing and other lanes keep
// dispatching while one pool absorbs a batch.
func (f *Fair) loop(k int) {
	defer f.wg.Done()
	var run []laneEntry
	f.mu.Lock()
	for {
		busy := false
		for i := 0; i < len(f.lanes); i++ {
			l := f.lanes[i]
			if k >= l.shards {
				continue
			}
			end := l.base + int64(len(l.q))
			if l.pos[k] == end {
				l.deficit[k] = 0
				continue
			}
			busy = true
			l.deficit[k] += int64(f.quantum) * int64(l.weight)
			run = run[:0]
			for l.pos[k] < end {
				e := l.q[l.pos[k]-l.base]
				if ecost(e) > l.deficit[k] {
					break
				}
				l.deficit[k] -= ecost(e)
				run = append(run, e)
				l.pos[k]++
			}
			if l.pos[k] == end {
				l.deficit[k] = 0
			}
			if len(run) == 0 {
				continue
			}
			l.inflight[k] += len(run)
			gate := f.gate
			l.advance()
			l.room.Broadcast()
			f.mu.Unlock()
			tasks := int64(0)
			for _, e := range run {
				if gate != nil {
					gate()
				}
				if l.shards == 1 {
					// Serial lane: whole-batch dispatch plus the inline
					// hooks, exactly the single-dispatcher semantics. The
					// task count and trace link are read before Dispatch —
					// admitting the batch hands it to the pool, which may
					// recycle it.
					tasks += int64(len(e.b.tasks))
					var start time.Time
					var link obs.Link
					if l.after != nil {
						start = time.Now()
						link = e.b.link
					}
					l.pool.Dispatch(e.b)
					if f.afterDispatch != nil {
						f.afterDispatch(l, e.tuples)
					}
					if l.after != nil {
						l.after(link, e.tuples, start)
					}
					continue
				}
				tasks += int64(l.pool.DispatchShard(e.b, k, l.shards))
				if k == 0 && f.afterDispatch != nil {
					f.afterDispatch(l, e.tuples)
				}
			}
			f.mu.Lock()
			l.tasks[k] += tasks
			l.inflight[k] -= len(run)
			l.advance()
			l.room.Broadcast()
		}
		if busy {
			continue
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		f.work.Wait()
	}
}
