package server

import (
	"bytes"
	"net"
	"testing"
	"time"

	"implicate/internal/client"
	"implicate/internal/proto"
)

// pollAck polls the lane's watermark until cond is satisfied or the
// deadline passes.
func pollAck(t *testing.T, cl *client.Client, source uint64, what string, cond func(proto.UDPAck) bool) proto.UDPAck {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ack, err := cl.UDPAck(source)
		if err != nil {
			t.Fatal(err)
		}
		if cond(ack) {
			return ack
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane never reached %s; last ack %+v", what, ack)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPLaneReorderDuplicatesDrops drives the lane with hand-crafted
// datagrams — out of order, duplicated, beyond the reorder window, and
// corrupted — and asserts the watermark converges, every batch applies
// exactly once, and the final engine state is bit-identical to a serial
// run of the same batches in sequence order.
func TestUDPLaneReorderDuplicatesDrops(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(6, 50)
	want, serial := serialState(t, schema, 13, batches)

	srv := startServer(t, Config{
		Schema:    schema,
		Engine:    determinismEngine(t, schema, 13),
		Workers:   4,
		UDPAddr:   "127.0.0.1:0",
		UDPWindow: 8,
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})

	payloads := make([][]byte, len(batches))
	for i, ts := range batches {
		enc, err := client.EncodeBatch(schema, ts)
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = enc
	}
	const source = 3
	raw, err := net.Dial("udp", srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	send := func(seq uint64, payload []byte) {
		t.Helper()
		dg, err := proto.AppendDatagram(nil, proto.Datagram{Source: source, Seq: seq, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := raw.Write(dg); err != nil {
			t.Fatal(err)
		}
	}

	// Seq 2 ahead of 1: buffered, not applied. A second copy is a dup.
	send(2, payloads[1])
	send(2, payloads[1])
	pollAck(t, cl, source, "dup of a buffered datagram", func(a proto.UDPAck) bool { return a.Dups == 1 })
	// Seq 1 fills the gap: 1 and 2 apply, in order.
	send(1, payloads[0])
	pollAck(t, cl, source, "watermark 2", func(a proto.UDPAck) bool { return a.Cum == 2 })
	// Another reorder pair.
	send(4, payloads[3])
	send(3, payloads[2])
	pollAck(t, cl, source, "watermark 4", func(a proto.UDPAck) bool { return a.Cum == 4 })
	// A stale retransmission of an applied seq is a dup, never re-applied.
	send(1, payloads[0])
	pollAck(t, cl, source, "dup of an applied datagram", func(a proto.UDPAck) bool { return a.Dups == 2 })
	// Far beyond cum+window: dropped, not buffered.
	send(20, payloads[5])
	pollAck(t, cl, source, "window-overflow drop", func(a proto.UDPAck) bool { return a.Drops == 1 })
	// A corrupted datagram (bad CRC) is dropped before source attribution.
	dg, err := proto.AppendDatagram(nil, proto.Datagram{Source: source, Seq: 5, Payload: payloads[4]})
	if err != nil {
		t.Fatal(err)
	}
	dg[len(dg)-1] ^= 0xFF
	if _, err := raw.Write(dg); err != nil {
		t.Fatal(err)
	}
	// Finish the sequence, last gap first.
	send(6, payloads[5])
	send(5, payloads[4])
	ack := pollAck(t, cl, source, "watermark 6", func(a proto.UDPAck) bool { return a.Cum == 6 })
	if ack.Applied != 6 || ack.Dups != 2 || ack.Drops != 1 {
		t.Fatalf("final ack %+v, want applied 6, dups 2, drops 1", ack)
	}

	// Exactly-once application: the engine ends at precisely the serial
	// tuple count (waitTuples fails on overshoot) and bit-identical state.
	total := 0
	for _, ts := range batches {
		total += len(ts)
	}
	waitTuples(t, cl, int64(total))
	sn := srv.Telemetry().Snapshot()
	if sn.UDPDatagrams == 0 || sn.UDPDups != 2 || sn.UDPDrops < 2 {
		t.Fatalf("telemetry %d datagrams, %d dups, %d drops; want >0, 2, >=2 (overflow + corrupt)", sn.UDPDatagrams, sn.UDPDups, sn.UDPDrops)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("engine state diverged from the serial run")
	}
	for i, st := range srv.Engine().Statements() {
		if got, want := st.Count(), serial.Statements()[i].Count(); got != want {
			t.Errorf("stmt %d: count %v, want %v", i, got, want)
		}
	}
}

// TestUDPIngesterLossInjection runs the real client ingester against the
// real lane with injected transmission loss: first attempts of every third
// datagram vanish, and every ninth loses its first retransmission too. The
// retransmit loop must still converge the watermark, and the engine state
// must stay bit-identical to serial — loss can delay batches, never reorder
// or double-apply them.
func TestUDPIngesterLossInjection(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(30, 100)
	want, _ := serialState(t, schema, 17, batches)

	srv := startServer(t, Config{
		Schema:  schema,
		Engine:  determinismEngine(t, schema, 17),
		Workers: 4,
		UDPAddr: "127.0.0.1:0",
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	ui, err := cl.DialUDP(srv.UDPAddr(), client.UDPOptions{
		Source:    9,
		Window:    8,
		PollEvery: 4,
		PollGap:   200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ui.Close()
	var dropped int
	ui.SetDropHook(func(seq uint64, attempt int) bool {
		if (attempt == 1 && seq%3 == 0) || (attempt == 2 && seq%9 == 0) {
			dropped++
			return true
		}
		return false
	})

	total := 0
	for _, ts := range batches {
		enc, err := client.EncodeBatch(schema, ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ui.Send(enc); err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	if err := ui.Flush(); err != nil {
		t.Fatal(err)
	}
	if ui.Cum() != uint64(len(batches)) {
		t.Fatalf("watermark %d after flush, want %d", ui.Cum(), len(batches))
	}
	if dropped < len(batches)/3 {
		t.Fatalf("drop hook fired %d times, injection did not engage", dropped)
	}

	waitTuples(t, cl, int64(total))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("engine state diverged from the serial run under loss injection")
	}
}

// TestUDPAckUnknownSource documents the poll contract: an unknown source
// answers with a zero watermark rather than an error, so a client can poll
// before its first datagram lands.
func TestUDPAckUnknownSource(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{
		Schema:  schema,
		Engine:  testEngine(t, schema, exactBackend()),
		UDPAddr: "127.0.0.1:0",
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	ack, err := cl.UDPAck(424242)
	if err != nil {
		t.Fatal(err)
	}
	if ack != (proto.UDPAck{}) {
		t.Fatalf("unknown source answered %+v, want zero", ack)
	}
}
