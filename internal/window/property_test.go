package window

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"implicate/internal/exact"
	"implicate/internal/imps"
)

// TestSlidingMatchesBruteForce: with the exact backend, the sliding
// window's counts must equal an exact counter replayed over precisely the
// suffix the window reader selects — the oldest origin at or after n−width,
// origins being multiples of the granularity (plus origin 0).
func TestSlidingMatchesBruteForce(t *testing.T) {
	type tuple struct{ a, b string }
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := int64(50 + rng.Intn(300))
		gran := int64(1 + rng.Intn(int(width)))
		cnd := imps.Conditions{
			MaxMultiplicity:  1 + rng.Intn(3),
			MinSupport:       int64(1 + rng.Intn(4)),
			TopC:             1,
			MinTopConfidence: []float64{0.5, 0.8, 1.0}[rng.Intn(3)],
		}
		n := 100 + rng.Intn(900)
		stream := make([]tuple, n)
		for i := range stream {
			stream[i] = tuple{
				a: fmt.Sprintf("a%d", rng.Intn(40)),
				b: fmt.Sprintf("b%d", rng.Intn(6)),
			}
		}

		s := MustSliding(width, gran, func() imps.Estimator { return exact.MustCounter(cnd) })
		for _, tp := range stream {
			s.Add(tp.a, tp.b)
		}

		// The origin the reader must have chosen.
		cut := int64(n) - width
		var origin int64
		if cut > 0 {
			origin = (cut + gran - 1) / gran * gran
		}
		ref := exact.MustCounter(cnd)
		for _, tp := range stream[origin:] {
			ref.Add(tp.a, tp.b)
		}

		return s.ImplicationCount() == ref.ImplicationCount() &&
			s.NonImplicationCount() == ref.NonImplicationCount() &&
			s.SupportedDistinct() == ref.SupportedDistinct() &&
			s.AvgMultiplicity() == ref.AvgMultiplicity()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSlidingRetirementBoundary: the retirement rule's exact boundary.
// For random geometries, at every stream position the live slot set must
// (1) still contain the oldest origin at or after cut = n−width — in
// particular a slot with origin == cut exactly is never retired early —
// and (2) contain at most one origin before cut, and only when no origin
// at or after cut exists. The reader must select precisely the boundary
// slot, so no tuple inside the window is dropped and none before it is
// double-counted.
func TestSlidingRetirementBoundary(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := int64(10 + rng.Intn(200))
		gran := int64(1 + rng.Intn(int(width)))
		cnd := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 1}
		s := MustSliding(width, gran, func() imps.Estimator { return exact.MustCounter(cnd) })

		n := int64(width + gran + int64(rng.Intn(600)))
		for i := int64(0); i < n; i++ {
			s.Add(fmt.Sprintf("a%d", rng.Intn(30)), fmt.Sprintf("b%d", rng.Intn(5)))

			cut := s.Tuples() - width
			slots := s.Slots()
			// The boundary origin the reader needs: the smallest multiple of
			// gran (or 0) that is >= cut and has been opened by now.
			var boundary int64
			if cut > 0 {
				boundary = (cut + gran - 1) / gran * gran
			}
			if maxOpened := (s.Tuples() - 1) / gran * gran; boundary > maxOpened {
				boundary = maxOpened // not opened yet: the newest slot stands in
			}
			// A pre-cut origin may survive only as the sole stand-in slot:
			// keeping one alongside newer slots means the reader could
			// double-count pre-window arrivals.
			if len(slots) > 1 && slots[0].Origin < cut {
				t.Logf("seed %d: stale origin %d kept at n=%d (cut %d)", seed, slots[0].Origin, s.Tuples(), cut)
				return false
			}
			found := false
			for _, sl := range slots {
				if sl.Origin == boundary {
					found = true
					break
				}
			}
			if !found {
				t.Logf("seed %d: boundary origin %d missing at n=%d (cut %d, slots %v)",
					seed, boundary, s.Tuples(), cut, slots)
				return false
			}
			// The reader picks exactly the boundary slot.
			var want imps.Estimator
			for _, sl := range slots {
				if sl.Origin == boundary {
					want = sl.Est
					break
				}
			}
			if s.window() != want {
				t.Logf("seed %d: reader chose the wrong slot at n=%d", seed, s.Tuples())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSlidingMemoryStaysBounded: the number of live estimators never
// exceeds width/gran + 2 no matter how long the stream runs.
func TestSlidingMemoryStaysBounded(t *testing.T) {
	cnd := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 1}
	width, gran := int64(400), int64(50)
	s := MustSliding(width, gran, func() imps.Estimator { return exact.MustCounter(cnd) })
	bound := int(width/gran) + 2
	for i := 0; i < 20000; i++ {
		s.Add(fmt.Sprintf("a%d", i%33), "b")
		if got := s.Estimators(); got > bound {
			t.Fatalf("tuple %d: %d live estimators exceed bound %d", i, got, bound)
		}
	}
}
