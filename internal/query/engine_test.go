package query

import (
	"bytes"
	"strings"
	"testing"

	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

func mustSchema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("Source", "Destination", "Service", "Time")
}

// table1 is the example network stream of Table 1.
func table1() []stream.Tuple {
	return []stream.Tuple{
		{"S1", "D2", "WWW", "Morning"},
		{"S2", "D1", "FTP", "Morning"},
		{"S1", "D3", "WWW", "Morning"},
		{"S2", "D1", "P2P", "Noon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S1", "D3", "WWW", "Afternoon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S3", "D3", "P2P", "Night"},
	}
}

func exactBackend(cond imps.Conditions) (imps.Estimator, error) {
	return exact.NewCounter(cond)
}

func run(t *testing.T, sql string) *Statement {
	t.Helper()
	e := NewEngine(mustSchema(t))
	st, err := e.RegisterSQL(sql, exactBackend)
	if err != nil {
		t.Fatalf("register %q: %v", sql, err)
	}
	if _, err := e.Consume(stream.NewMemSource(table1())); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTable2Examples evaluates the classified example queries of Table 2 on
// the Table 1 stream with the exact backend and checks the counts the paper
// quotes (where it quotes them) or hand-computed ground truth.
func TestTable2Examples(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want float64
	}{
		{
			"distinct count: how many sources have we seen so far",
			`SELECT COUNT(DISTINCT Source) FROM traffic`,
			3,
		},
		{
			"one-to-one: destinations contacted by only one source",
			`SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source`,
			2, // D2→S1, D1→S2 (§1)
		},
		{
			"one-to-one with noise: destinations contacted by one source 80% of the time",
			`SELECT COUNT(DISTINCT Destination) FROM traffic
			 WHERE Destination IMPLIES Source WITH CONFIDENCE >= 0.8 TOP 1, MULTIPLICITY <= 5`,
			3, // D3 qualifies too (§1)
		},
		{
			"services requested from only one source",
			`SELECT COUNT(DISTINCT Service) FROM traffic WHERE Service IMPLIES Source`,
			2, // WWW→S1, FTP→S2 (§1)
		},
		{
			"services used by at most two sources 80% of the time (§3.1.2)",
			`SELECT COUNT(DISTINCT Service) FROM traffic
			 WHERE Service IMPLIES Source WITH MULTIPLICITY <= 5, CONFIDENCE >= 0.8 TOP 2`,
			2, // WWW, FTP; P2P fails at 75%
		},
		{
			"same at 75% admits P2P (§3.1.2)",
			`SELECT COUNT(DISTINCT Service) FROM traffic
			 WHERE Service IMPLIES Source WITH MULTIPLICITY <= 5, CONFIDENCE >= 0.75 TOP 2`,
			3,
		},
		{
			"conditional: sources contacting only one destination during the morning",
			`SELECT COUNT(DISTINCT Source) FROM traffic
			 WHERE Source IMPLIES Destination AND Time = 'Morning'`,
			1, // morning tuples: S1→{D2,D3} (out), S2→{D1} (in)
		},
		{
			"complement: sources that do not use only the WWW service",
			`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source NOT IMPLIES Service`,
			2, // S1 uses WWW+P2P, S2 uses FTP+P2P; S3 only P2P
		},
		{
			"compound: sources contacting only one target per service",
			`SELECT COUNT(DISTINCT Source) FROM traffic
			 WHERE Source IMPLIES Destination GROUP BY Service`,
			4, // (S1,WWW)→{D2,D3} fails; (S1,P2P)→D3, (S2,FTP)→D1, (S2,P2P)→D1, (S3,P2P)→D3 hold
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(t, tc.sql).Count(); got != tc.want {
				t.Fatalf("%s\n  count = %v, want %v", tc.sql, got, tc.want)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	schema := stream.MustSchema("a", "b", "c")
	bad := []Query{
		{},
		{A: []string{"a"}},                    // missing B
		{A: []string{"zz"}, B: []string{"b"}}, // unknown A
		{A: []string{"a"}, B: []string{"zz"}}, // unknown B
		{A: []string{"a"}, B: []string{"a"}},  // overlap
		{A: []string{"a"}, B: []string{"b"}, GroupBy: []string{"b"}},
		{A: []string{"a"}, B: []string{"b"}, Filters: []Filter{{Attr: "zz"}}},
		{A: []string{"a"}, B: []string{"b"}, Window: 10, Every: 20},
		{A: []string{"a"}, B: []string{"b"}, Cond: imps.Conditions{MaxMultiplicity: 1, TopC: 1, MinSupport: -2, MinTopConfidence: 1}},
	}
	for i, q := range bad {
		if _, err := Compile(q, schema, exactBackend); err == nil {
			t.Errorf("bad query %d accepted: %+v", i, q)
		}
	}
	if _, err := Compile(Query{A: []string{"a"}, B: []string{"b"}}, schema, nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	schema := stream.MustSchema("a", "b")
	q := Query{A: []string{"a"}, B: []string{"b"}}
	if err := q.Normalize(schema); err != nil {
		t.Fatal(err)
	}
	want := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 1.0}
	if q.Cond != want {
		t.Fatalf("defaults = %+v", q.Cond)
	}
	// TopC pulls MaxMultiplicity up.
	q2 := Query{A: []string{"a"}, B: []string{"b"}, Cond: imps.Conditions{TopC: 3}}
	if err := q2.Normalize(schema); err != nil {
		t.Fatal(err)
	}
	if q2.Cond.MaxMultiplicity != 3 {
		t.Fatalf("MaxMultiplicity = %d, want 3", q2.Cond.MaxMultiplicity)
	}
}

func TestWindowedStatement(t *testing.T) {
	schema := stream.MustSchema("s", "d")
	e := NewEngine(schema)
	st, err := e.RegisterSQL(
		`SELECT COUNT(DISTINCT s) FROM t WHERE s IMPLIES d WITH SUPPORT >= 2 WINDOW 100 EVERY 20`,
		exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	// 50 implicating itemsets (100 tuples), then 200 noise tuples pushing
	// them out of the window.
	for i := 0; i < 50; i++ {
		a := stream.Tuple{string(rune('A'+i%26)) + "x" + string(rune('0'+i/26)), "d"}
		e.Process(a)
		e.Process(a)
	}
	inWindow := st.Count()
	if inWindow < 40 {
		t.Fatalf("windowed count = %v, want ≈50", inWindow)
	}
	for i := 0; i < 200; i++ {
		e.Process(stream.Tuple{"noise" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)), "q"})
	}
	if got := st.Count(); got >= inWindow/2 {
		t.Fatalf("stale itemsets remain in window: %v", got)
	}
	if e.Tuples() != 300 {
		t.Fatalf("Tuples = %d", e.Tuples())
	}
}

func TestSketchBackend(t *testing.T) {
	e := NewEngine(mustSchema(t))
	backend := func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, core.Options{Seed: 42})
	}
	st, err := e.RegisterSQL(
		`SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source`,
		backend)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // replay the toy stream to give the sketch volume
		for _, tup := range table1() {
			e.Process(tup)
		}
	}
	// Exact answer is 2 out of 3 destinations; the sketch at tiny
	// cardinality tracks everything and should be very close.
	if got := st.Count(); got < 1 || got > 4 {
		t.Fatalf("sketch-backed count = %v, want ≈2", got)
	}
	if len(e.Statements()) != 1 {
		t.Fatalf("Statements = %d", len(e.Statements()))
	}
}

// stringOnlyEstimator hides an estimator's byte-key fast path so tests can
// compare the engine's two ingest routes.
type stringOnlyEstimator struct{ est imps.Estimator }

func (w stringOnlyEstimator) Add(a, b string)             { w.est.Add(a, b) }
func (w stringOnlyEstimator) ImplicationCount() float64   { return w.est.ImplicationCount() }
func (w stringOnlyEstimator) NonImplicationCount() float64 {
	return w.est.NonImplicationCount()
}
func (w stringOnlyEstimator) SupportedDistinct() float64 { return w.est.SupportedDistinct() }
func (w stringOnlyEstimator) Tuples() int64              { return w.est.Tuples() }
func (w stringOnlyEstimator) MemEntries() int            { return w.est.MemEntries() }

// TestProcessBatchMatchesProcess checks that the batched dispatch path and
// the byte-key ingest path both land on exactly the per-tuple results, over
// a stream with filters and a GROUP BY in play.
func TestProcessBatchMatchesProcess(t *testing.T) {
	queries := []string{
		`SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source`,
		`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination AND Time = 'Morning'`,
		`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination GROUP BY Service`,
	}
	var tuples []stream.Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, table1()...)
	}

	sketch := func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, core.Options{Seed: 42})
	}
	stringOnly := func(cond imps.Conditions) (imps.Estimator, error) {
		est, err := core.NewSketch(cond, core.Options{Seed: 42})
		return stringOnlyEstimator{est}, err
	}

	type variant struct {
		name  string
		stmts []*Statement
	}
	var variants []variant
	build := func(name string, backend Backend, feed func(*Engine)) {
		e := NewEngine(mustSchema(t))
		var stmts []*Statement
		for _, q := range queries {
			st, err := e.RegisterSQL(q, backend)
			if err != nil {
				t.Fatal(err)
			}
			stmts = append(stmts, st)
		}
		feed(e)
		if e.Tuples() != int64(len(tuples)) {
			t.Fatalf("%s: engine counted %d tuples, want %d", name, e.Tuples(), len(tuples))
		}
		variants = append(variants, variant{name, stmts})
	}

	build("per-tuple", sketch, func(e *Engine) {
		for _, tup := range tuples {
			e.Process(tup)
		}
	})
	build("batched", sketch, func(e *Engine) {
		for off := 0; off < len(tuples); off += 97 {
			end := off + 97
			if end > len(tuples) {
				end = len(tuples)
			}
			e.ProcessBatch(tuples[off:end])
		}
	})
	build("string-keys", stringOnly, func(e *Engine) {
		e.ProcessBatch(tuples)
	})

	ref := variants[0]
	for _, v := range variants[1:] {
		for i, st := range v.stmts {
			if got, want := st.Count(), ref.stmts[i].Count(); got != want {
				t.Errorf("%s: query %d count %v, want %v (per-tuple reference)", v.name, i, got, want)
			}
		}
	}
}

// TestConsumeBatchSource checks Engine.Consume drains binary sources through
// the batch path with identical results to the per-tuple text path.
func TestConsumeBatchSource(t *testing.T) {
	schema := mustSchema(t)
	var bin bytes.Buffer
	bw := stream.NewBinaryWriter(&bin, schema)
	var tuples []stream.Tuple
	for i := 0; i < 700; i++ {
		tuples = append(tuples, table1()...)
	}
	for _, tup := range tuples {
		if err := bw.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()

	sql := `SELECT COUNT(DISTINCT Destination) FROM traffic WHERE Destination IMPLIES Source`

	mem := NewEngine(schema)
	stMem, err := mem.RegisterSQL(sql, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := mem.Consume(stream.NewMemSource(tuples)); err != nil || n != int64(len(tuples)) {
		t.Fatalf("mem consume = (%d, %v)", n, err)
	}

	eng := NewEngine(schema)
	st, err := eng.RegisterSQL(sql, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	br, err := stream.NewBinaryReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.Consume(br)
	if err != nil || n != int64(len(tuples)) {
		t.Fatalf("binary consume = (%d, %v), want %d tuples", n, err, len(tuples))
	}
	if got, want := st.Count(), stMem.Count(); got != want {
		t.Fatalf("batched consume count %v, want %v", got, want)
	}
}

func TestStatementQueryAccessor(t *testing.T) {
	st := run(t, `SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination`)
	q := st.Query()
	if q.Mode != CountImplications || q.A[0] != "Source" {
		t.Fatalf("Query() = %+v", q)
	}
	// The normalized query renders and mentions its parts.
	s := q.String()
	for _, want := range []string{"SELECT COUNT(DISTINCT Source)", "IMPLIES Destination"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		CountImplications:    "implications",
		CountNonImplications: "non-implications",
		CountSupported:       "supported",
		CountDistinct:        "distinct",
		AvgMultiplicity:      "avg-multiplicity",
		Mode(99):             "Mode(99)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestRenderDefaultFromName(t *testing.T) {
	q := Query{A: []string{"a"}, B: []string{"b"}}
	if err := q.Normalize(stream.MustSchema("a", "b")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "FROM stream") {
		t.Fatalf("missing default FROM: %q", q.String())
	}
}
