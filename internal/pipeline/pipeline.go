// Package pipeline is the concurrency layer of the ingest path: it takes
// the batches a producer (the server's connection readers, a bench driver)
// hands it, splits each across the engine's statements by concurrency
// class, and fans the work out to a fixed pool of workers — while
// preserving, by construction, the exact state a serial run would build.
//
// The ordering argument (DESIGN.md §10): partition-safe statements route
// every A-itemset to one ingest partition of their estimator, each
// partition is pinned to one worker, and worker queues are FIFO — so the
// per-partition tuple order equals the batch arrival order, which the
// imps.PartitionedAdder contract says is the only order that matters.
// Serialized statements are pinned whole to one home worker, so their
// estimator sees the full batch sequence in arrival order, exactly like
// the old single-worker loop. Reordering only ever happens across
// partitions or across statements, where no shared state exists.
//
// The split between Plan and Dispatch is the pipeline's second axis of
// parallelism: Plan touches no estimator or pool state and may run
// concurrently on any number of producer goroutines (filters, projections
// and partition hashing happen there), while Dispatch — the only ordered
// step — must be called from a single goroutine, which defines the batch
// arrival order.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/query"
	"implicate/internal/stream"
)

// Config tunes a Pool.
type Config struct {
	// Workers is the worker-goroutine count; 0 selects 1.
	Workers int
	// QueueLen is the per-worker task queue capacity in tasks; 0 selects 128.
	// A full queue never drops work — Dispatch blocks (and reports
	// saturation) until the worker drains.
	QueueLen int

	// OnApplied, when set, is called once per dispatched batch after every
	// statement has fully applied it, with the batch's tuple count. The
	// engine's Tuples total is advanced before the call.
	OnApplied func(tuples int)
	// OnTask, when set, is called after each task a worker applies, with the
	// worker index and the number of tuples (serialized class) or planned
	// pairs (partition-safe class) the task carried.
	OnTask func(worker, units int)
	// OnSaturated, when set, is called each time Dispatch finds a worker
	// queue full and has to block — the pool-saturation signal.
	OnSaturated func()

	// Tracer, when non-nil, records one apply span per worker task with the
	// worker's index and the task's unit count. Nil disables tracing and
	// its per-task clock reads entirely.
	Tracer *obs.Tracer
}

// Pool fans planned batches out to its workers. Plan is safe for
// concurrent use; Dispatch and Fence must be called from one goroutine
// (the dispatcher), which defines the global batch order; Close must not
// race either. The engine's statement set must not change while the pool
// is live.
type Pool struct {
	cfg     Config
	eng     *query.Engine
	workers int
	// parts is the partition count statements plan against: the smallest
	// power of two >= workers, so every worker owns at least one partition
	// and the partition of a key never depends on the worker count (see
	// imps.PartitionedAdder).
	parts  int
	owners []*query.Statement
	// home pins each serialized-class owner (by index in owners) to one
	// worker; partition-safe owners have -1 and fan out by partition.
	home   []int
	queues []chan *task
	wg     sync.WaitGroup
	// free recycles Batches — and through them every plan-side buffer: the
	// decode arena, the partition buckets, the task slice. A batch returns
	// to the list when its last task applies (see applied), so steady-state
	// ingest re-plans into warm memory instead of allocating per batch.
	free sync.Pool
}

// Batch is one planned ingest batch: the per-statement work items Plan
// derived from the tuples, ready for Dispatch. A Batch is single-use
// between acquisition (NewBatch/Plan) and release: dispatching hands
// ownership to the pool, which recycles the batch after the last statement
// applies — the caller must not touch it after Dispatch admits it.
type Batch struct {
	n         int
	tasks     []task
	remaining atomic.Int32
	pool      *Pool
	// arena backs the batch's decoded tuples (see Arena); recycled with the
	// batch, so its lifetime is exactly the batch's plan-to-apply window.
	arena stream.RecordArena
	// hb and pb are the per-owner partition-bucket backing stores: owner i
	// plans into window [i*parts, (i+1)*parts). Bucket capacity persists
	// across reuse, which is what makes steady-state planning allocation-
	// free.
	hb [][]imps.HashedPair
	pb [][]imps.Pair
	// link is the causal identity the batch's apply spans record under —
	// the inbound frame's trace context, threaded from the connection
	// reader through dispatch to the workers. Zero for untraced batches.
	link obs.Link
}

// SetLink attaches the inbound trace context the batch's apply spans will
// be recorded under. Call it between acquisition and Dispatch; the pool
// clears it when the batch is recycled.
func (b *Batch) SetLink(l obs.Link) { b.link = l }

// Tuples returns the batch's tuple count.
func (b *Batch) Tuples() int { return b.n }

// Arena returns the batch's decode arena: the server decodes a wire batch
// into it, then plans the decoded tuples into the same batch, tying the
// tuple buffers' lifetime to the batch's refcount.
func (b *Batch) Arena() *stream.RecordArena { return &b.arena }

// task is one unit of worker work: a planned partition bucket for a
// partition-safe statement (hash-forwarding when the estimator supports
// it), a whole tuple batch for a serialized one, or a fence sentinel.
type task struct {
	st     *query.Statement
	pairs  []imps.Pair
	hpairs []imps.HashedPair
	tuples []stream.Tuple
	batch  *Batch
	worker int
	fence  *sync.WaitGroup
}

// New starts a pool of cfg.Workers workers over the engine's registered
// statements. The pool owns the engine's ingest path until Close; queries
// (Statement.Count) remain safe at any time.
func New(eng *query.Engine, cfg Config) (*Pool, error) {
	// Nonsensical knobs are rejected, not clamped: a negative value is
	// always a caller bug, and silently running one worker would mask it.
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("pipeline: worker count %d must be >= 1 (or 0 for the default)", cfg.Workers)
	}
	if cfg.QueueLen < 0 {
		return nil, fmt.Errorf("pipeline: queue length %d must be >= 1 (or 0 for the default)", cfg.QueueLen)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 128
	}
	parts := 1
	for parts < cfg.Workers {
		parts *= 2
	}
	p := &Pool{
		cfg:     cfg,
		eng:     eng,
		workers: cfg.Workers,
		parts:   parts,
		queues:  make([]chan *task, cfg.Workers),
	}
	p.free.New = func() any { return &Batch{pool: p} }
	serialized := 0
	for _, st := range eng.Statements() {
		if st.Shared() {
			// Shared statements alias an owner's estimator; the owner's
			// tasks feed it exactly once per tuple.
			continue
		}
		p.owners = append(p.owners, st)
		// A single worker applies whole batches in arrival order for every
		// class — the serial fast path, with no planning or fan-out cost.
		if st.PartitionSafe() && p.workers > 1 {
			p.home = append(p.home, -1)
		} else {
			p.home = append(p.home, serialized%p.workers)
			serialized++
		}
	}
	for w := range p.queues {
		p.queues[w] = make(chan *task, cfg.QueueLen)
		p.wg.Add(1)
		go p.run(w)
	}
	return p, nil
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Partitions returns the partition count partition-safe statements plan
// against.
func (p *Pool) Partitions() int { return p.parts }

// NewBatch acquires a batch from the pool's free list (or allocates a
// fresh one). The caller decodes into its Arena, plans it with PlanInto,
// and either dispatches it — after which the pool releases it — or hands
// it back with Release on an admission failure.
func (p *Pool) NewBatch() *Batch {
	return p.free.Get().(*Batch)
}

// Plan acquires a batch and plans ts into it; see PlanInto.
func (p *Pool) Plan(ts []stream.Tuple) *Batch {
	return p.PlanInto(p.NewBatch(), ts)
}

// PlanInto runs every owner statement's filters, projections and partition
// hashing over ts, materializing the work items Dispatch will fan out into
// the acquired batch's recycled buffers. Planning reads no mutable
// statement or pool state: any number of goroutines may plan concurrently
// while workers apply earlier batches. The caller hands ts to the batch
// and must not reuse it until the batch is applied (tuples decoded into
// b.Arena() satisfy this by construction).
//
// Estimators that accept forwarded hashes (query.Statement.
// HashedPartitionSafe) are planned through the hash-once IR: each key is
// hashed here, once, with the estimator's own hash functions, and the
// workers apply the hashes instead of re-hashing.
func (p *Pool) PlanInto(b *Batch, ts []stream.Tuple) *Batch {
	b.n = len(ts)
	b.tasks = b.tasks[:0]
	if len(b.hb) != len(p.owners)*p.parts {
		b.hb = make([][]imps.HashedPair, len(p.owners)*p.parts)
		b.pb = make([][]imps.Pair, len(p.owners)*p.parts)
	}
	for i, st := range p.owners {
		if p.home[i] >= 0 {
			b.tasks = append(b.tasks, task{st: st, tuples: ts, worker: p.home[i], batch: b})
			continue
		}
		if st.HashedPartitionSafe() {
			win := st.PlanPartitionsHashed(ts, p.parts, b.hb[i*p.parts:(i+1)*p.parts])
			for part, bucket := range win {
				if len(bucket) == 0 {
					continue
				}
				b.tasks = append(b.tasks, task{st: st, hpairs: bucket, worker: part % p.workers, batch: b})
			}
			continue
		}
		win := st.PlanPartitions(ts, p.parts, b.pb[i*p.parts:(i+1)*p.parts])
		for part, bucket := range win {
			if len(bucket) == 0 {
				continue
			}
			b.tasks = append(b.tasks, task{st: st, pairs: bucket, worker: part % p.workers, batch: b})
		}
	}
	return b
}

// Release hands an acquired batch back to the pool's free list without
// dispatching it — the admission-failure path (decode error after acquire,
// quota refusal, busy lane, shutdown). Never call it on a dispatched
// batch: dispatching transfers ownership, and the pool releases the batch
// itself when the last statement applies.
func (b *Batch) Release() { b.release() }

// release zeroes the batch's task headers — so a pooled batch pins neither
// its caller's tuple slice nor the statements — resets the arena, and
// returns the batch to the free list. The partition buckets keep their
// contents (capacity included); they are rewritten in place by the next
// plan, and at most one batch's worth of key bytes stays reachable per
// pooled batch in the interim.
func (b *Batch) release() {
	clear(b.tasks)
	b.tasks = b.tasks[:0]
	b.n = 0
	b.link = obs.Link{}
	b.arena.Reset()
	b.pool.free.Put(b)
}

// Dispatch enqueues a planned batch. Calls must come from one goroutine;
// the call order is the arrival order every estimator observes. Dispatch
// blocks when a worker queue is full (reporting saturation) and returns as
// soon as every task is enqueued — application completes asynchronously,
// signalled through OnApplied, after which the pool recycles the batch.
func (p *Pool) Dispatch(b *Batch) {
	if len(b.tasks) == 0 {
		p.applied(b)
		return
	}
	b.remaining.Store(int32(len(b.tasks)))
	p.enqueueShard(b, 0, 1)
}

// prepareShared arms a batch for sharded dispatch: the refcount counts
// every task plus one guard per dispatch shard, so the batch cannot be
// applied-and-recycled while any shard still has tasks to enqueue. It must
// run before the first DispatchShard — the fair dispatcher calls it at
// admission, under its lock, strictly before any shard sees the batch.
func (b *Batch) prepareShared(shards int) {
	b.remaining.Store(int32(len(b.tasks) + shards))
}

// DispatchShard enqueues one shard's slice of a prepared batch: the tasks
// whose worker w satisfies w % shards == shard. Each shard index must be
// dispatched exactly once per batch, each from a single goroutine that
// processes batches in admission order; distinct shards may run
// concurrently. Because worker w only ever receives tasks from shard
// w % shards, every worker queue still sees its tasks in admission order —
// the per-partition FIFO the bit-identity argument needs (DESIGN.md §15).
// It returns the number of tasks this shard enqueued, for the per-shard
// dispatch telemetry.
func (p *Pool) DispatchShard(b *Batch, shard, shards int) int {
	n := p.enqueueShard(b, shard, shards)
	b.finish()
	return n
}

func (p *Pool) enqueueShard(b *Batch, shard, shards int) int {
	n := 0
	for i := range b.tasks {
		t := &b.tasks[i]
		if shards > 1 && t.worker%shards != shard {
			continue
		}
		n++
		select {
		case p.queues[t.worker] <- t:
		default:
			if p.cfg.OnSaturated != nil {
				p.cfg.OnSaturated()
			}
			p.queues[t.worker] <- t
		}
	}
	return n
}

// finish drops one guard reference; the last drop applies the batch.
func (b *Batch) finish() {
	if b.remaining.Add(-1) == 0 {
		b.pool.applied(b)
	}
}

// applied publishes a fully applied batch: the engine's tuple total first,
// so a reader that learns of the batch through OnApplied (or through
// telemetry fed from it) never observes an engine that has not counted it.
// The batch is recycled afterwards — this is the single release point of
// the arena lifecycle, reached exactly once per dispatched batch.
func (p *Pool) applied(b *Batch) {
	p.eng.AddTuples(int64(b.n))
	if p.cfg.OnApplied != nil {
		p.cfg.OnApplied(b.n)
	}
	b.release()
}

// run is one worker: it applies its queue in FIFO order until Close.
func (p *Pool) run(w int) {
	defer p.wg.Done()
	tr := p.cfg.Tracer
	for t := range p.queues[w] {
		if t.fence != nil {
			t.fence.Done()
			continue
		}
		var start time.Time
		var link obs.Link
		if tr != nil {
			start = time.Now()
			link = t.batch.link
		}
		units := 0
		switch {
		case t.hpairs != nil:
			t.st.ProcessHashedPairs(t.hpairs)
			units = len(t.hpairs)
		case t.pairs != nil:
			t.st.ProcessPairs(t.pairs)
			units = len(t.pairs)
		default:
			t.st.ProcessBatchExclusive(t.tuples)
			units = len(t.tuples)
		}
		if tr != nil {
			tr.SpanLinked(link, obs.SpanApply, w, int64(units), start)
		}
		if p.cfg.OnTask != nil {
			p.cfg.OnTask(w, units)
		}
		// finish may recycle the batch (and this task's own memory): read
		// nothing from t after it.
		t.batch.finish()
	}
}

// Fence is the pool's barrier: it returns only after every task dispatched
// before the call has been applied and accounted (OnApplied included).
// Like Dispatch, it must be called from the dispatcher goroutine — the
// FIFO queues make a sentinel per worker a full barrier. The caller may
// then read or marshal estimator state with no task in flight.
func (p *Pool) Fence() {
	var wg sync.WaitGroup
	wg.Add(len(p.queues))
	f := task{fence: &wg}
	for w := range p.queues {
		p.queues[w] <- &f
	}
	wg.Wait()
}

// Close drains every queue and stops the workers. Dispatch must not be
// called after (or concurrently with) Close.
func (p *Pool) Close() {
	for w := range p.queues {
		close(p.queues[w])
	}
	p.wg.Wait()
}
