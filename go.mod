module implicate

go 1.23
