package stream

import (
	"bytes"
	"io"
	"strconv"
	"testing"
)

func resumeTuples(n int) []Tuple {
	out := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Tuple{"S" + strconv.Itoa(i%17), "D" + strconv.Itoa(i%5)})
	}
	return out
}

// sourcesUnderTest builds each Resumable implementation over the same
// logical stream.
func sourcesUnderTest(t *testing.T, tuples []Tuple) map[string]func() Resumable {
	t.Helper()
	schema := MustSchema("Source", "Destination")

	var text bytes.Buffer
	tw := NewWriter(&text, schema)
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin, schema)
	for _, tu := range tuples {
		if err := tw.Write(tu); err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	return map[string]func() Resumable{
		"mem": func() Resumable { return NewMemSource(tuples) },
		"text": func() Resumable {
			r, err := NewReader(bytes.NewReader(text.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"binary": func() Resumable {
			r, err := NewBinaryReader(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
	}
}

func TestResumableSkipMatchesRead(t *testing.T) {
	tuples := resumeTuples(100)
	for name, open := range sourcesUnderTest(t, tuples) {
		t.Run(name, func(t *testing.T) {
			// Read 30, note the position, then open fresh and skip there:
			// the remainder must be identical.
			ref := open()
			for i := 0; i < 30; i++ {
				if _, err := ref.Next(); err != nil {
					t.Fatal(err)
				}
			}
			if ref.Pos() != 30 {
				t.Fatalf("Pos after 30 reads: %d", ref.Pos())
			}
			resumed := open()
			if err := resumed.SkipTuples(30); err != nil {
				t.Fatal(err)
			}
			if resumed.Pos() != 30 {
				t.Fatalf("Pos after skip: %d", resumed.Pos())
			}
			for i := 30; ; i++ {
				a, errA := ref.Next()
				b, errB := resumed.Next()
				if (errA == io.EOF) != (errB == io.EOF) {
					t.Fatalf("EOF mismatch at %d: %v vs %v", i, errA, errB)
				}
				if errA == io.EOF {
					if i != len(tuples) {
						t.Fatalf("streams ended after %d tuples, want %d", i, len(tuples))
					}
					break
				}
				if errA != nil || errB != nil {
					t.Fatal(errA, errB)
				}
				for f := range a {
					if a[f] != b[f] {
						t.Fatalf("tuple %d field %d: %q vs %q", i, f, a[f], b[f])
					}
				}
			}
		})
	}
}

func TestResumableSkipPastEndErrors(t *testing.T) {
	tuples := resumeTuples(10)
	for name, open := range sourcesUnderTest(t, tuples) {
		t.Run(name, func(t *testing.T) {
			src := open()
			if err := src.SkipTuples(11); err == nil {
				t.Fatal("skipping past the end of the stream did not error")
			}
			if err := open().SkipTuples(-1); err == nil {
				t.Fatal("negative skip did not error")
			}
		})
	}
}

func TestBinaryBatchPos(t *testing.T) {
	tuples := resumeTuples(40)
	open := sourcesUnderTest(t, tuples)["binary"]
	src := open().(*BinaryReader)
	batch := make([]Tuple, 16)
	var total int64
	for {
		n, err := src.NextBatch(batch)
		total += int64(n)
		if src.Pos() != total {
			t.Fatalf("Pos %d after %d batched tuples", src.Pos(), total)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 40 {
		t.Fatalf("decoded %d tuples, want 40", total)
	}
}
