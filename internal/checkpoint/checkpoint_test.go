package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"implicate/internal/core"
	"implicate/internal/dsample"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/lossy"
	"implicate/internal/query"
	"implicate/internal/stream"
)

func testSchema() *stream.Schema {
	return stream.MustSchema("Source", "Destination", "Service", "Time")
}

func genTuples(start, n int) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	svcs := [...]string{"WWW", "FTP", "P2P"}
	times := [...]string{"Morning", "Noon", "Night"}
	for i := start; i < start+n; i++ {
		src := "S" + strconv.Itoa(i%41)
		dst := "D" + strconv.Itoa((i*3)%13)
		if i%41 < 14 {
			dst = "D-solo"
		}
		out = append(out, stream.Tuple{src, dst, svcs[i%3], times[(i/3)%3]})
	}
	return out
}

func nipsBackend(cond imps.Conditions) (imps.Estimator, error) {
	return core.NewSketch(cond, core.Options{Bitmaps: 64, Seed: 5})
}

func shardedBackend(cond imps.Conditions) (imps.Estimator, error) {
	return core.NewShardedSketch(cond, core.Options{Bitmaps: 64, Seed: 5}, 2)
}

func exactBackend(cond imps.Conditions) (imps.Estimator, error) {
	return exact.NewCounter(cond)
}

func ilcBackend(cond imps.Conditions) (imps.Estimator, error) {
	return lossy.NewILC(cond, 0.01, 0.005)
}

func dsBackend(cond imps.Conditions) (imps.Estimator, error) {
	return dsample.New(cond, 256, 8, 21)
}

var testQueries = []struct {
	sql     string
	backend query.Backend
}{
	{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.5 TOP 1`, exactBackend},
	{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source NOT IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.5 TOP 1`, exactBackend},
	{`SELECT COUNT(DISTINCT Destination) FROM t WHERE Destination IMPLIES Source WITH SUPPORT >= 2, MULTIPLICITY <= 3`, nipsBackend},
	{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 2, MULTIPLICITY <= 2 WINDOW 600 EVERY 60`, nipsBackend},
	{`SELECT COUNT(DISTINCT Service) FROM t WHERE Service IMPLIES Source WITH MULTIPLICITY <= 50, CONFIDENCE >= 0.1 TOP 1`, shardedBackend},
	{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Service WITH MULTIPLICITY <= 3, CONFIDENCE >= 0.5 TOP 1`, ilcBackend},
	{`SELECT COUNT(DISTINCT Destination) FROM t WHERE Destination IMPLIES Service WITH SUPPORT >= 2, MULTIPLICITY <= 3, CONFIDENCE >= 0.5 TOP 1`, dsBackend},
}

func buildEngine(t *testing.T) *query.Engine {
	t.Helper()
	e := query.NewEngine(testSchema())
	for _, reg := range testQueries {
		if _, err := e.RegisterSQL(reg.sql, reg.backend); err != nil {
			t.Fatalf("register %q: %v", reg.sql, err)
		}
	}
	return e
}

func resolver(q query.Query, kind string) (query.Backend, error) {
	switch kind {
	case "nips":
		return nipsBackend, nil
	case "sharded":
		return shardedBackend, nil
	case "exact":
		return exactBackend, nil
	case "ilc":
		return ilcBackend, nil
	case "ds":
		return dsBackend, nil
	}
	return nil, fmt.Errorf("no backend for kind %q", kind)
}

// TestKillAndResume is the subsystem's headline guarantee: kill a run at an
// arbitrary point, restore from its checkpoint file, replay the stream from
// the recorded offset — and every statement, over every backend, answers
// exactly what an uninterrupted run answers. (All test backends are
// deterministic given the tuple order, and a checkpoint carries full
// estimator state, so "within estimator error" tightens to "identical".)
func TestKillAndResume(t *testing.T) {
	const total, killAt = 5000, 2311
	tuples := genTuples(0, total)

	// The uninterrupted reference run.
	ref := buildEngine(t)
	if _, err := ref.Consume(stream.NewMemSource(tuples)); err != nil {
		t.Fatal(err)
	}

	// The killed run: consume killAt tuples, checkpoint, drop the engine.
	path := filepath.Join(t.TempDir(), "impstat.ckpt")
	{
		victim := buildEngine(t)
		src := stream.NewMemSource(tuples)
		for i := 0; i < killAt; i++ {
			tu, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			victim.Process(tu)
		}
		snap, err := Capture(victim, src.Pos())
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(path, snap); err != nil {
			t.Fatal(err)
		}
	}

	// Recovery: read the file, restore, skip, replay.
	snap, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != killAt {
		t.Fatalf("checkpoint offset %d, want %d", snap.Offset, killAt)
	}
	recovered, err := Restore(snap, testSchema(), resolver)
	if err != nil {
		t.Fatal(err)
	}
	src := stream.NewMemSource(tuples)
	if err := src.SkipTuples(snap.Offset); err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Consume(src); err != nil {
		t.Fatal(err)
	}

	if recovered.Tuples() != ref.Tuples() {
		t.Fatalf("recovered engine saw %d tuples, reference %d", recovered.Tuples(), ref.Tuples())
	}
	refStmts, recStmts := ref.Statements(), recovered.Statements()
	if len(refStmts) != len(recStmts) {
		t.Fatalf("recovered %d statements, want %d", len(recStmts), len(refStmts))
	}
	for i := range refStmts {
		if got, want := recStmts[i].Count(), refStmts[i].Count(); got != want {
			t.Fatalf("statement %d (%s): recovered count %g, uninterrupted count %g",
				i, refStmts[i].Query(), got, want)
		}
	}
}

// TestKillAndResumeFromBinaryFile runs the same recovery against an on-disk
// binary stream file, exercising BinaryReader.SkipTuples.
func TestKillAndResumeFromBinaryFile(t *testing.T) {
	const total, killAt = 3000, 1472
	tuples := genTuples(0, total)
	dir := t.TempDir()

	streamPath := filepath.Join(dir, "stream.bin")
	f, err := os.Create(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	w := stream.NewBinaryWriter(f, testSchema())
	for _, tu := range tuples {
		if err := w.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	openStream := func() *stream.BinaryReader {
		t.Helper()
		f, err := os.Open(streamPath)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		r, err := stream.NewBinaryReader(f)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	ref := buildEngine(t)
	if _, err := ref.Consume(openStream()); err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(dir, "impstat.ckpt")
	{
		victim := buildEngine(t)
		src := openStream()
		for i := 0; i < killAt; i++ {
			tu, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			victim.Process(tu)
		}
		snap, err := Capture(victim, src.Pos())
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(ckptPath, snap); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := Read(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Restore(snap, testSchema(), resolver)
	if err != nil {
		t.Fatal(err)
	}
	src := openStream()
	if err := src.SkipTuples(snap.Offset); err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Consume(src); err != nil {
		t.Fatal(err)
	}

	refStmts, recStmts := ref.Statements(), recovered.Statements()
	for i := range refStmts {
		if got, want := recStmts[i].Count(), refStmts[i].Count(); got != want {
			t.Fatalf("statement %d (%s): recovered count %g, uninterrupted count %g",
				i, refStmts[i].Query(), got, want)
		}
	}
}

func capturedFile(t *testing.T, n int) []byte {
	t.Helper()
	e := buildEngine(t)
	e.ProcessBatch(genTuples(0, n))
	snap, err := Capture(e, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	return Encode(snap)
}

// TestTruncatedCheckpointRejected: every truncation of a checkpoint file
// fails with a clear error — never a partial or wrong restore.
func TestTruncatedCheckpointRejected(t *testing.T) {
	data := capturedFile(t, 400)
	for n := 0; n < len(data); n++ {
		if n > 256 && n%17 != 0 && n != len(data)-1 {
			continue
		}
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(data))
		}
	}
}

// TestBitFlippedCheckpointRejected: any single bit flip anywhere in the
// file is caught (by the magic, the version gate, or the CRC).
func TestBitFlippedCheckpointRejected(t *testing.T) {
	data := capturedFile(t, 400)
	step := len(data)/997 + 1
	for off := 0; off < len(data); off += step {
		for _, bit := range []uint{0, 3, 7} {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded without error", off, bit)
			}
		}
	}
}

// TestCorruptCheckpointErrorsAreClear: the rejection messages name the
// problem, so an operator can tell a corrupt file from a version skew.
func TestCorruptCheckpointErrorsAreClear(t *testing.T) {
	data := capturedFile(t, 100)

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x40
	if _, err := Decode(flipped); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip error does not mention the checksum: %v", err)
	}

	skewed := append([]byte(nil), data...)
	skewed[len(fileMagic)] = 99 // version field
	// Re-stamp nothing: version sits outside the CRC-guarded payload.
	if _, err := Decode(skewed); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew error does not mention the version: %v", err)
	}
}

// TestWriteIsAtomicAndReplaces: Write replaces an existing checkpoint and
// leaves no temporary files behind.
func TestWriteIsAtomicAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	if err := Write(path, Snapshot{Offset: 1, Engine: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, Snapshot{Offset: 2, Engine: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != 2 || string(snap.Engine) != "two" {
		t.Fatalf("read back offset %d engine %q", snap.Offset, snap.Engine)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory has %v, want just the checkpoint", names)
	}
}

// TestPeriodic: snapshots land every Every tuples of progress, not more.
func TestPeriodic(t *testing.T) {
	e := buildEngine(t)
	p := &Periodic{Path: filepath.Join(t.TempDir(), "p.ckpt"), Every: 100}
	writes := 0
	for off := int64(25); off <= 1000; off += 25 {
		wrote, err := p.Maybe(e, off)
		if err != nil {
			t.Fatal(err)
		}
		if wrote {
			writes++
		}
	}
	if writes != 10 {
		t.Fatalf("wrote %d checkpoints over 1000 tuples at Every=100, want 10", writes)
	}
	if _, err := Read(p.Path); err != nil {
		t.Fatal(err)
	}
}
