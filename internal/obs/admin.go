package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"implicate/internal/imps"
	"implicate/internal/telemetry"
)

// AdminState is what the admin endpoint reads from a running server: a
// telemetry snapshot, the engine's per-statement health, and the current
// span ring. The server implements it; the split keeps obs free of a
// server dependency (the dependency runs the other way).
type AdminState interface {
	StatsSnapshot() telemetry.Snapshot
	HealthReports() []imps.HealthReport
	TraceSpans() []Span
}

// TenantSpec is the JSON body of POST /tenants — the wire shape of a
// tenant declaration. It mirrors tenant.Config field for field; obs cannot
// import internal/tenant (the dependency runs server → obs), so the server
// does the conversion.
type TenantSpec struct {
	Name      string   `json:"name"`
	Queries   []string `json:"queries"`
	Backend   string   `json:"backend"`
	MemBudget int64    `json:"mem_budget,omitempty"`
	Rate      float64  `json:"rate,omitempty"`
	Burst     float64  `json:"burst,omitempty"`
	Weight    int      `json:"weight,omitempty"`
	QueueLen  int      `json:"queue_len,omitempty"`
}

// TenantAdmin is the optional tenant-lifecycle surface of an AdminState.
// When the state implements it, NewAdminMux registers POST /tenants and
// DELETE /tenants/{name}, and /healthz lists per-tenant health lines.
type TenantAdmin interface {
	CreateTenant(spec TenantSpec) error
	DropTenant(name string) error
	TenantStats() []telemetry.TenantStats
}

// jsonSpan is a Span rendered for the /trace dump: kind named, times
// readable, attribution spelled out. The binary RPC codec ships raw Spans;
// JSON exists for humans and jq. The identity fields only appear on spans
// that carry them (cross-node traces); single-node dumps stay unchanged.
type jsonSpan struct {
	Node   string `json:"node,omitempty"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Arg    int32  `json:"arg"`
	Start  string `json:"start"`
	DurNS  int64  `json:"dur_ns"`
	Units  int64  `json:"units"`
	Trace  uint64 `json:"trace,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	ID     uint64 `json:"id,omitempty"`
}

// NewAdminMux returns the impserved admin handler: Prometheus-text
// /metrics, a trivial /healthz, a JSON /trace span dump, and the pprof
// suite under /debug/pprof/ (registered explicitly — the admin mux never
// touches http.DefaultServeMux).
func NewAdminMux(st AdminState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are undeliverable (the scraper hung up);
		// WriteMetrics just stops early.
		_ = WriteMetrics(w, st.StatsSnapshot(), st.HealthReports())
	})
	ta, _ := st.(TenantAdmin)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
		if ta == nil {
			return
		}
		// Single-tenant servers answer exactly "ok\n" (probes and tests pin
		// that); one line per tenant follows only when tenants exist.
		for _, ts := range ta.TenantStats() {
			fmt.Fprintf(w, "tenant %s tuples=%d batches=%d rejected=%d quota_refusals=%d mem=%d/%d queue_hw=%d\n",
				ts.Name, ts.Tuples, ts.Batches, ts.Rejected, ts.QuotaRefusals, ts.MemBytes, ts.MemBudget, ts.QueueHighWater)
		}
	})
	if ta != nil {
		mux.HandleFunc("POST /tenants", func(w http.ResponseWriter, r *http.Request) {
			var spec TenantSpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := ta.CreateTenant(spec); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, "created %s\n", spec.Name)
		})
		mux.HandleFunc("DELETE /tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
			name := r.PathValue("name")
			if err := ta.DropTenant(name); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			fmt.Fprintf(w, "dropped %s\n", name)
		})
	}
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		spans := st.TraceSpans()
		out := make([]jsonSpan, len(spans))
		for i, s := range spans {
			out[i] = jsonSpan{
				Seq:    s.Seq,
				Kind:   s.Kind.String(),
				Arg:    s.Arg,
				Start:  time.Unix(0, s.Start).UTC().Format(time.RFC3339Nano),
				DurNS:  s.Dur,
				Units:  s.Units,
				Trace:  s.Trace,
				Parent: s.Parent,
				ID:     s.ID,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a running admin endpoint; Close stops it.
type AdminServer struct {
	Addr string // the bound address, resolved from a ":0" request
	srv  *http.Server
	ln   net.Listener
}

// ListenAdmin binds addr and serves the admin mux for st in a background
// goroutine. The admin endpoint is unauthenticated (and, when st
// implements TenantAdmin, carries tenant lifecycle routes) — bind it to
// loopback or an operations network, never the ingest address.
func ListenAdmin(addr string, st AdminState) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewAdminMux(st), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the admin endpoint, closing its listener and any open
// scrapes.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
