package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// TestTracedFrameRoundTrip pins the traced-frame layout through both
// decoders: context decoded, payload stripped of the context bytes, and
// both decoders agreeing.
func TestTracedFrameRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: 0xfeedbeefcafe, Parent: 0x1234}
	f := Frame{Type: TIngest, ID: 9, TC: tc, Payload: []byte("routed batch")}
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if enc[4] != Version|FlagTraced {
		t.Fatalf("version byte %#02x, want %#02x", enc[4], Version|FlagTraced)
	}

	got, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(enc))
	got2, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range []Frame{got, got2} {
		if g.TC != tc {
			t.Errorf("decoder %d: context %+v, want %+v", i, g.TC, tc)
		}
		if !bytes.Equal(g.Payload, f.Payload) {
			t.Errorf("decoder %d: payload %q, want %q", i, g.Payload, f.Payload)
		}
		if g.Type != f.Type || g.ID != f.ID {
			t.Errorf("decoder %d: header %v/%d, want %v/%d", i, g.Type, g.ID, f.Type, f.ID)
		}
	}
}

// TestUntracedFrameBytesUnchanged is the backward-compatibility pin: a
// frame without context must be byte-identical to the pre-trace encoding
// (hand-built here exactly as a PR 7–9 peer would), so every exchange
// between peers that never arm tracing is indistinguishable from the old
// protocol — in both directions.
func TestUntracedFrameBytesUnchanged(t *testing.T) {
	payload := []byte("legacy bytes")
	enc, err := AppendFrame(nil, Frame{Type: TQuery, ID: 77, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}

	// The old encoder, verbatim: length, version 1, type, id, CRC, payload.
	var old []byte
	old = binary.LittleEndian.AppendUint32(old, uint32(headerLen+len(payload)))
	old = append(old, 1, uint8(TQuery))
	old = binary.LittleEndian.AppendUint64(old, 77)
	old = binary.LittleEndian.AppendUint32(old, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	old = append(old, payload...)

	if !bytes.Equal(enc, old) {
		t.Fatalf("untraced encode differs from the pre-trace layout\nnew: %x\nold: %x", enc, old)
	}

	// And the old peer's frame decodes with an absent context.
	got, err := ReadFrame(bytes.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if got.TC.Valid() {
		t.Fatalf("old-format frame decoded with context %+v", got.TC)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload %q, want %q", got.Payload, payload)
	}
}

// TestTracedFrameCRCCoversContext flips one context byte and requires both
// decoders to reject the frame: the trace context is protected like any
// other payload byte.
func TestTracedFrameCRCCoversContext(t *testing.T) {
	enc, err := AppendFrame(nil, Frame{Type: TSnapshot, ID: 3, TC: TraceContext{Trace: 5, Parent: 6}, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	enc[4+headerLen] ^= 0xFF // first byte of the encoded trace id
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("ReadFrame accepted a corrupted context: %v", err)
	}
	fr := NewFrameReader(bytes.NewReader(enc))
	if _, err := fr.Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("FrameReader accepted a corrupted context: %v", err)
	}
}

// TestTracedFrameTooShortForContext rejects a flagged frame whose payload
// region cannot hold the context.
func TestTracedFrameTooShortForContext(t *testing.T) {
	short := []byte{0xAB, 0xCD} // 2 bytes where 16 are required
	var enc []byte
	enc = binary.LittleEndian.AppendUint32(enc, uint32(headerLen+len(short)))
	enc = append(enc, Version|FlagTraced, uint8(TIngest))
	enc = binary.LittleEndian.AppendUint64(enc, 1)
	enc = binary.LittleEndian.AppendUint32(enc, crc32.Checksum(short, castagnoli))
	enc = append(enc, short...)
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("ReadFrame accepted a truncated context: %v", err)
	}
	fr := NewFrameReader(bytes.NewReader(enc))
	if _, err := fr.Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("FrameReader accepted a truncated context: %v", err)
	}
}

// TestTracedZeroPayloadFrame covers the degenerate traced frame: context
// only, empty payload (a traced Query with a zero-length body would come
// close; pin the exact boundary).
func TestTracedZeroPayloadFrame(t *testing.T) {
	enc, err := AppendFrame(nil, Frame{Type: TBoot, ID: 1, TC: TraceContext{Trace: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.TC.Trace != 1 || got.TC.Parent != 0 || len(got.Payload) != 0 {
		t.Fatalf("decoded %+v payload %d bytes", got.TC, len(got.Payload))
	}
	if _, err := ReadFrame(bytes.NewReader(enc[:len(enc)-1])); !errors.Is(err, ErrMalformed) {
		t.Fatal("truncated traced frame accepted")
	}
}

// TestFrameReaderTracedStreamMix interleaves traced and untraced frames on
// one connection — the realistic wire: tracing armed mid-fleet, most
// frames still bare.
func TestFrameReaderTracedStreamMix(t *testing.T) {
	frames := []Frame{
		{Type: TIngest, ID: 1, Payload: []byte("plain")},
		{Type: TIngest, ID: 2, TC: TraceContext{Trace: 11, Parent: 12}, Payload: []byte("traced")},
		{Type: TQuery, ID: 3, TC: TraceContext{Trace: 11, Parent: 13}},
		{Type: TStats, ID: 4},
	}
	var stream []byte
	var err error
	for _, f := range frames {
		if stream, err = AppendFrame(stream, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	for i, want := range frames {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.TC != want.TC || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v %q, want %+v %q", i, got.TC, got.Payload, want.TC, want.Payload)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("at EOF: %v", err)
	}
}
