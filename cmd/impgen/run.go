package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"

	"implicate/internal/gen"
	"implicate/internal/stream"
)

type config struct {
	kind   string
	out    string
	format string
	n      int64
	seed   int64
	card   int
	count  int
	c      int
	flash  int
	after  int64
}

func parseFlags(args []string) (*config, []string, error) {
	fs := flag.NewFlagSet("impgen", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.kind, "kind", "nettraffic", "dataset kind: nettraffic, olap, datasetone")
	fs.StringVar(&cfg.out, "out", "", "output file (default stdout)")
	fs.StringVar(&cfg.format, "format", "text", "output format: text or binary")
	fs.Int64Var(&cfg.n, "n", 100000, "number of tuples (nettraffic, olap)")
	fs.Int64Var(&cfg.seed, "seed", 1, "generator seed")
	fs.IntVar(&cfg.card, "card", 1000, "datasetone: |A|")
	fs.IntVar(&cfg.count, "count", 500, "datasetone: imposed implication count")
	fs.IntVar(&cfg.c, "c", 1, "datasetone: one-to-c width")
	fs.IntVar(&cfg.flash, "flash", 0, "nettraffic: flash-crowd sources (0 disables)")
	fs.Int64Var(&cfg.after, "flash-after", 0, "nettraffic: onset tuple of the flash crowd")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return cfg, fs.Args(), nil
}

// run generates the requested dataset into w, reporting progress to diag.
// flushingSink is satisfied by both stream writers.
type flushingSink interface {
	stream.Sink
	Flush() error
}

func (c *config) newWriter(w io.Writer, schema *stream.Schema) (flushingSink, error) {
	switch c.format {
	case "", "text":
		return stream.NewWriter(w, schema), nil
	case "binary":
		return stream.NewBinaryWriter(w, schema), nil
	default:
		return nil, fmt.Errorf("unknown format %q", c.format)
	}
}

func run(cfg *config, w, diag io.Writer) error {
	switch cfg.kind {
	case "nettraffic":
		g := gen.NewNetTraffic(gen.NetTrafficConfig{
			Seed: cfg.seed, FlashSources: cfg.flash, FlashAfter: cfg.after,
		})
		return cfg.emit(w, gen.NetTrafficSchema(), cfg.n, g.Next)
	case "olap":
		g := gen.NewOLAP(gen.OLAPConfig{Seed: cfg.seed})
		return cfg.emit(w, gen.OLAPSchema(), cfg.n, g.Next)
	case "datasetone":
		d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
			CardA: cfg.card, Count: cfg.count, C: cfg.c, Seed: cfg.seed,
		})
		if err != nil {
			return err
		}
		schema := stream.MustSchema("A", "B")
		sw, err := cfg.newWriter(w, schema)
		if err != nil {
			return err
		}
		for _, p := range d.Pairs {
			t := stream.Tuple{strconv.FormatUint(p.A, 10), strconv.FormatUint(p.B, 10)}
			if err := sw.Write(t); err != nil {
				return err
			}
		}
		if err := sw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(diag, "impgen: dataset one with |A|=%d S=%d (%s), %d tuples\n",
			cfg.card, d.Count, d.Conditions, len(d.Pairs))
		return nil
	default:
		return fmt.Errorf("unknown kind %q", cfg.kind)
	}
}

func (c *config) emit(w io.Writer, schema *stream.Schema, n int64, next func() (stream.Tuple, error)) error {
	sw, err := c.newWriter(w, schema)
	if err != nil {
		return err
	}
	for i := int64(0); i < n; i++ {
		t, err := next()
		if err != nil {
			return err
		}
		if err := sw.Write(t); err != nil {
			return err
		}
	}
	return sw.Flush()
}
