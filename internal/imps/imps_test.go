package imps

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestConditionsValidate(t *testing.T) {
	valid := Conditions{MaxMultiplicity: 5, MinSupport: 50, TopC: 2, MinTopConfidence: 0.8}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid conditions rejected: %v", err)
	}
	cases := []struct {
		name string
		c    Conditions
	}{
		{"zero multiplicity", Conditions{MaxMultiplicity: 0, MinSupport: 1, TopC: 1, MinTopConfidence: 0.5}},
		{"negative multiplicity", Conditions{MaxMultiplicity: -1, MinSupport: 1, TopC: 1, MinTopConfidence: 0.5}},
		{"zero topc", Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 0, MinTopConfidence: 0.5}},
		{"topc exceeds k", Conditions{MaxMultiplicity: 2, MinSupport: 1, TopC: 3, MinTopConfidence: 0.5}},
		{"zero support", Conditions{MaxMultiplicity: 1, MinSupport: 0, TopC: 1, MinTopConfidence: 0.5}},
		{"zero confidence", Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 0}},
		{"confidence above one", Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 1.01}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestConditionsString(t *testing.T) {
	c := Conditions{MaxMultiplicity: 5, MinSupport: 50, TopC: 2, MinTopConfidence: 0.8}
	want := "K=5 τ=50 ψ2=0.80"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTopSumBasics(t *testing.T) {
	cases := []struct {
		counts []int64
		c      int
		want   int64
	}{
		{nil, 1, 0},
		{[]int64{5}, 0, 0},
		{[]int64{5}, 1, 5},
		{[]int64{5}, 3, 5},
		{[]int64{1, 2, 3, 4}, 1, 4},
		{[]int64{1, 2, 3, 4}, 2, 7},
		{[]int64{1, 2, 3, 4}, 4, 10},
		{[]int64{4, 4, 1}, 2, 8},
		{[]int64{2, 1, 4}, 10, 7},
	}
	for _, tc := range cases {
		if got := TopSum(tc.counts, tc.c); got != tc.want {
			t.Errorf("TopSum(%v, %d) = %d, want %d", tc.counts, tc.c, got, tc.want)
		}
	}
}

func TestTopSumDoesNotMutate(t *testing.T) {
	in := []int64{3, 1, 2}
	TopSum(in, 2)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("TopSum mutated its input: %v", in)
	}
}

// TestTopSumMatchesSort property-checks the partial selection against a full
// sort.
func TestTopSumMatchesSort(t *testing.T) {
	f := func(raw []uint16, cRaw uint8) bool {
		counts := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
		}
		c := int(cRaw%10) + 1
		sorted := append([]int64(nil), counts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		var want int64
		for i := 0; i < c && i < len(sorted); i++ {
			want += sorted[i]
		}
		return TopSum(counts, c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopConfidence(t *testing.T) {
	if got := TopConfidence([]int64{2, 1, 1}, 1, 4); got != 0.5 {
		t.Fatalf("TopConfidence top-1 = %v, want 0.5", got)
	}
	// Paper's running example (§3.1): P2P appears with sources {2/4, 1/4,
	// 1/4}; the top-2 confidence is 75%.
	if got := TopConfidence([]int64{2, 1, 1}, 2, 4); got != 0.75 {
		t.Fatalf("TopConfidence top-2 = %v, want 0.75", got)
	}
	if got := TopConfidence([]int64{2, 1, 1}, 3, 4); got != 1.0 {
		t.Fatalf("TopConfidence top-3 = %v, want 1.0", got)
	}
	if got := TopConfidence(nil, 1, 0); got != 0 {
		t.Fatalf("TopConfidence with zero support = %v, want 0", got)
	}
}

// TestTopConfidenceMonotoneInC checks Ψ_c is non-decreasing in c.
func TestTopConfidenceMonotoneInC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		counts := make([]int64, n)
		var supp int64
		for i := range counts {
			counts[i] = int64(rng.Intn(20) + 1)
			supp += counts[i]
		}
		prev := 0.0
		for c := 1; c <= n+2; c++ {
			cur := TopConfidence(counts, c, supp)
			if cur < prev {
				t.Fatalf("Ψ_%d=%v < Ψ_%d=%v for counts %v", c, cur, c-1, prev, counts)
			}
			prev = cur
		}
		if prev != 1.0 {
			t.Fatalf("Ψ_n should reach 1.0 when supp equals the counter total, got %v", prev)
		}
	}
}
