// Package implicate maintains implicated statistics over data streams in
// constrained environments, implementing Sismanis & Roussopoulos,
// "Maintaining Implicated Statistics in Constrained Environments" (ICDE
// 2005).
//
// The central statistic is the implication count: given a stream of tuples
// and two attribute sets A and B, how many distinct A-itemsets imply B —
// appear with at most K distinct B-itemsets, with support at least τ, and
// with their top-c partners covering at least a ψ fraction of their
// occurrences? Such counts summarize one-to-one and one-to-many
// relationships in real time: destinations contacted by a single source
// (intrusion detection), services requested by one client, approximate
// functional dependencies, correlation pre-passes for multi-dimensional
// synopses.
//
// The primary estimator is the paper's NIPS/CI sketch (NewSketch): a
// Flajolet–Martin style bitmap whose floating fringe zone tracks the few
// still-undecided itemsets, recording confirmed non-implications as
// monotone bits. It answers implication-count queries within ~10% using
// O(K·2^F) counters per bitmap — thousands of entries for streams of any
// length and any attribute cardinality. Baselines from the paper's
// evaluation are included: an exact hash-table counter (NewExact),
// Implication Lossy Counting (NewILC), and Distinct Sampling
// (NewDistinctSampling).
//
// Queries can be written in the paper's SQL-like dialect and run over tuple
// streams:
//
//	eng := implicate.NewEngine(schema)
//	st, err := eng.RegisterSQL(`
//	    SELECT COUNT(DISTINCT Destination) FROM traffic
//	    WHERE Destination IMPLIES Source
//	    WITH SUPPORT >= 10, CONFIDENCE >= 0.9 TOP 1`, implicate.SketchBackend(implicate.Options{}))
//	... feed tuples with eng.Process ...
//	fmt.Println(st.Count())
//
// Incremental counts and sliding windows (§3.2) are provided by
// NewIncremental and NewSliding, or the WINDOW clause of the dialect.
package implicate

import (
	"sync/atomic"

	"implicate/internal/core"
	"implicate/internal/dsample"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/lossy"
	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/window"
)

// Conditions are the implication conditions (K, τ, c, ψ) of §3.1.1.
type Conditions = imps.Conditions

// Estimator is the contract shared by every implication-count algorithm.
type Estimator = imps.Estimator

// Options configure the NIPS/CI sketch (bitmap count, fringe size, slack,
// seed).
type Options = core.Options

// Sketch is the NIPS/CI estimator, the paper's primary contribution.
type Sketch = core.Sketch

// NewSketch returns a NIPS/CI sketch for the given implication conditions.
func NewSketch(cond Conditions, opts Options) (*Sketch, error) {
	return core.NewSketch(cond, opts)
}

// Exact is the exact hash-table implication counter (ground truth; memory
// proportional to the number of distinct itemsets).
type Exact = exact.Counter

// NewExact returns an exact counter.
func NewExact(cond Conditions) (*Exact, error) { return exact.NewCounter(cond) }

// ILC is Implication Lossy Counting (§5.1), the frequent-itemset baseline.
type ILC = lossy.ILC

// NewILC returns an ILC instance with relative support relSupport and
// approximation parameter eps (eps ≤ relSupport).
func NewILC(cond Conditions, relSupport, eps float64) (*ILC, error) {
	return lossy.NewILC(cond, relSupport, eps)
}

// DistinctSampling is the Gibbons distinct-sampling baseline adapted to
// implication counting (§6.2).
type DistinctSampling = dsample.Sketch

// NewDistinctSampling returns a Distinct Sampling estimator with the given
// entry budget and per-value bound.
func NewDistinctSampling(cond Conditions, size, bound int, seed uint64) (*DistinctSampling, error) {
	return dsample.New(cond, size, bound, seed)
}

// Schema, Tuple and Proj model the stream relation of §3.
type (
	Schema = stream.Schema
	Tuple  = stream.Tuple
	Proj   = stream.Proj
)

// NewSchema builds a schema from attribute names.
func NewSchema(names ...string) (*Schema, error) { return stream.NewSchema(names...) }

// Query types: the implication-query model and engine of Table 2.
type (
	Query     = query.Query
	Filter    = query.Filter
	Mode      = query.Mode
	Statement = query.Statement
	Engine    = query.Engine
	Backend   = query.Backend
)

// Query modes.
const (
	CountImplications    = query.CountImplications
	CountNonImplications = query.CountNonImplications
	CountSupported       = query.CountSupported
	CountDistinct        = query.CountDistinct
	AvgMultiplicity      = query.AvgMultiplicity
)

// MultiplicityAverager is implemented by estimators that can answer
// AVG(MULTIPLICITY(...)) queries (Table 2's complex-aggregate row). The
// sketch, the exact counter, ILC, Distinct Sampling and sliding windows all
// implement it.
type MultiplicityAverager = imps.MultiplicityAverager

// UnmarshalSketch restores a sketch serialized with Sketch.MarshalBinary —
// the checkpoint/ship-upstream path of distributed aggregation; restored
// sketches continue streaming and can be merged with Sketch.Merge.
func UnmarshalSketch(data []byte) (*Sketch, error) { return core.UnmarshalSketch(data) }

// EpsDelta is the §4.7.1 confidence amplifier: the median over an odd
// number of independently seeded sketches. Choose Options.Bitmaps for the
// target relative error ε (≈0.78/√m) and the group count for the target
// failure probability δ (GroupsFor).
type EpsDelta = core.EpsDelta

// NewEpsDelta returns a median-of-groups estimator over g independently
// seeded sketches.
func NewEpsDelta(cond Conditions, opts Options, g int) (*EpsDelta, error) {
	return core.NewEpsDelta(cond, opts, g)
}

// GroupsFor returns the group count needed for failure probability delta.
func GroupsFor(delta float64) int { return core.GroupsFor(delta) }

// NewEngine returns a query engine bound to the schema.
func NewEngine(schema *Schema) *Engine { return query.NewEngine(schema) }

// ParseQuery parses the SQL-like implication-query dialect of §3.
func ParseQuery(sql string) (*Query, error) { return query.Parse(sql) }

// SketchBackend returns a Backend producing NIPS/CI sketches with the given
// options (seeds are derived per statement, atomically, so one backend can
// serve statement registration from concurrent goroutines).
func SketchBackend(opts Options) Backend {
	var n atomic.Uint64
	return func(cond Conditions) (Estimator, error) {
		o := opts
		o.Seed = opts.Seed + n.Add(1)*0x9e3779b97f4a7c15
		return core.NewSketch(cond, o)
	}
}

// ExactBackend returns a Backend producing exact counters.
func ExactBackend() Backend {
	return func(cond Conditions) (Estimator, error) { return exact.NewCounter(cond) }
}

// StripedExact is the lock-striped exact counter: items are routed to
// independently locked stripes by itemset hash, so concurrent producers (and
// the pipeline's partitioned ingest) scale across cores while counts stay
// exact and the marshalled state stays stripe-count independent.
type StripedExact = exact.Striped

// NewStripedExact returns a lock-striped exact counter. stripes must be a
// power of two; 0 selects a stripe count matched to GOMAXPROCS.
func NewStripedExact(cond Conditions, stripes int) (*StripedExact, error) {
	return exact.NewStriped(cond, stripes)
}

// StripedExactBackend returns a Backend producing lock-striped exact
// counters (stripes as in NewStripedExact). Use it instead of ExactBackend
// when statements are fed from concurrent producers or through a
// multi-worker server pipeline.
func StripedExactBackend(stripes int) Backend {
	return func(cond Conditions) (Estimator, error) { return exact.NewStriped(cond, stripes) }
}

// Incremental answers "how many new implicating itemsets since t" queries
// by snapshot differencing (§3.2).
type Incremental = window.Incremental

// Mark is a snapshot of counts at a reference point.
type Mark = window.Mark

// NewIncremental wraps a fresh estimator for incremental queries.
func NewIncremental(est Estimator) *Incremental { return window.NewIncremental(est) }

// Sliding maintains a vector of estimators with staggered origins for
// moving-window implication counts (§3.2).
type Sliding = window.Sliding

// NewSliding returns a sliding-window counter over windows of width tuples
// with origins every gran tuples.
func NewSliding(width, gran int64, newEstimator func() Estimator) (*Sliding, error) {
	return window.NewSliding(width, gran, newEstimator)
}
